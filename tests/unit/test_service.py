"""Unit tests for repro.service: protocol, cache, admission, solvers."""

import json

import pytest

from repro.io import problem_fingerprint, problem_to_dict, report_from_dict
from repro.service import (
    PROTOCOL_VERSION,
    AdmissionController,
    ProtocolError,
    ResultCache,
    cache_key,
    execute_payload,
)
from repro.service.protocol import (
    decode,
    encode,
    error_response,
    normalize_request,
    ok_response,
)
from repro.service.solvers import solve_params


def _solve_request(problem, **overrides):
    message = {
        "op": "solve",
        "problem": problem_to_dict(problem),
        "solver": "heft",
        "seed": 1,
        "n_realizations": 50,
    }
    message.update(overrides)
    return normalize_request(message)


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "ping", "id": 7}
        assert decode(encode(message)) == message

    def test_encode_is_single_line(self):
        line = encode({"a": "x\ny", "b": [1, 2]})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError) as err:
            decode(b"{not json")
        assert err.value.code == "bad-json"

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as err:
            decode(b"[1, 2]")
        assert err.value.code == "bad-json"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as err:
            normalize_request({"op": "dance"})
        assert err.value.code == "unknown-op"

    def test_solve_requires_problem(self):
        with pytest.raises(ProtocolError) as err:
            normalize_request({"op": "solve"})
        assert err.value.code == "bad-request"

    def test_solve_defaults(self, small_random_problem):
        request = _solve_request(small_random_problem)
        assert request["solver"] == "heft"
        assert request["epsilon"] == 1.0
        assert request["deadline_s"] is None
        assert request["ga"] == {}

    @pytest.mark.parametrize(
        "field, value",
        [
            ("solver", "simplex"),
            ("epsilon", 0.0),
            ("epsilon", "big"),
            ("seed", 1.5),
            ("seed", True),
            ("n_realizations", 0),
            ("deadline_s", -1.0),
            ("ga", {"mutation_prob": 1}),
            ("ga", {"max_iterations": 0}),
        ],
    )
    def test_solve_rejects_bad_fields(self, small_random_problem, field, value):
        with pytest.raises(ProtocolError):
            _solve_request(small_random_problem, **{field: value})

    def test_responses_carry_protocol_version(self):
        assert ok_response(3)["protocol"] == PROTOCOL_VERSION
        err = error_response(3, "bad-request", "nope")
        assert err["protocol"] == PROTOCOL_VERSION
        assert err["error"]["code"] == "bad-request"
        assert not err["ok"]

    def test_responses_are_strict_json(self):
        # allow_nan=False: a response with a NaN would fail to encode.
        with pytest.raises(ValueError):
            encode(ok_response(1, value=float("nan")))


class TestResultCache:
    def test_get_put_and_counters(self):
        cache = ResultCache(max_bytes=10_000)
        assert cache.get("k") is None
        assert cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] > 0

    def test_get_returns_copy(self):
        cache = ResultCache()
        cache.put("k", {"v": 1})
        cache.get("k")["v"] = 999
        assert cache.get("k")["v"] == 1

    def test_lru_eviction_under_byte_budget(self):
        entry = {"v": "x" * 100}
        size = len(json.dumps(entry, separators=(",", ":")))
        cache = ResultCache(max_bytes=3 * size)
        for name in "abc":
            cache.put(name, entry)
        cache.get("a")  # refresh a: b is now least-recently-used
        cache.put("d", entry)
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["bytes"] <= cache.max_bytes

    def test_oversized_entry_not_stored(self):
        cache = ResultCache(max_bytes=10)
        assert not cache.put("k", {"v": "x" * 100})
        assert len(cache) == 0

    def test_replacement_does_not_leak_bytes(self):
        cache = ResultCache(max_bytes=10_000)
        cache.put("k", {"v": "x" * 100})
        cache.put("k", {"v": "y"})
        assert cache.stats()["bytes"] == len(json.dumps({"v": "y"}, separators=(",", ":")))

    def test_entry_size_counts_utf8_bytes_not_code_points(self):
        # Regression: sizing used len() of the dumps text — a count of
        # code points of whatever rendering json.dumps picked, not the
        # stored document's bytes.  Pin the contract instead: an entry
        # costs exactly the UTF-8 size of its canonical JSON, so a
        # multibyte problem name (3 bytes per kana below) is charged
        # more than its character count.
        payload = {"name": "グラフスケジューラ", "makespan": 12.5}
        canonical = json.dumps(
            payload, allow_nan=False, ensure_ascii=False, separators=(",", ":")
        )
        byte_size = len(canonical.encode("utf-8"))
        assert byte_size > len(canonical)  # multibyte: bytes > code points
        cache = ResultCache(max_bytes=byte_size)
        assert cache.put("k", payload)  # exactly fits the budget
        assert cache.stats()["bytes"] == byte_size
        tight = ResultCache(max_bytes=byte_size - 1)
        assert not tight.put("k", payload)  # one byte short must reject
        assert len(tight) == 0

    def test_cache_key_is_order_insensitive(self):
        a = cache_key("fp", "ga", seed=1, epsilon=1.5)
        b = cache_key("fp", "ga", epsilon=1.5, seed=1)
        assert a == b
        assert a != cache_key("fp", "ga", seed=2, epsilon=1.5)
        assert a != cache_key("fp2", "ga", seed=1, epsilon=1.5)

    def test_solve_params_split_by_tier(self, small_random_problem):
        heft = _solve_request(small_random_problem, solver="heft", epsilon=1.7)
        ga = _solve_request(small_random_problem, solver="ga", epsilon=1.7)
        # Heuristics ignore epsilon, so it must not fragment their keys...
        assert "epsilon" not in solve_params(heft)
        # ...while the GA result depends on it.
        assert solve_params(ga)["epsilon"] == 1.7

    def test_solve_params_warm_seeds_change_ga_identity(self, small_random_problem):
        ga = _solve_request(small_random_problem, solver="ga")
        seeds = [{"order": [0, 1, 2], "proc_of": [0, 0, 1]}]
        cold = solve_params(ga)
        warm = solve_params(dict(ga, warm_seeds=seeds))
        # Seeds change the GA trajectory, so they are part of the key...
        assert "warm" not in cold
        assert warm.pop("warm")
        assert warm == cold
        # ...but the on/off flag alone is not: requests resolved without
        # seeds share the pre-warm-start key layout.
        assert solve_params(dict(ga, warm_start=False)) == cold
        assert solve_params(dict(ga, warm_seeds=[])) == cold

    def test_warm_start_flag_normalized(self, small_random_problem):
        request = _solve_request(small_random_problem, solver="ga")
        assert request["warm_start"] is True
        off = _solve_request(
            small_random_problem, solver="ga", warm_start=False
        )
        assert off["warm_start"] is False
        with pytest.raises(ProtocolError) as err:
            _solve_request(small_random_problem, warm_start="yes")
        assert err.value.code == "bad-request"

    def test_warm_seeds_pass_through_normalization(self, small_random_problem):
        # The coordinator re-normalizes requests when forwarding to a
        # shard; injected seed chromosomes must survive the round trip.
        seeds = [{"order": [0, 1], "proc_of": [0, 0]}]
        request = _solve_request(
            small_random_problem, solver="ga", warm_seeds=seeds
        )
        assert request["warm_seeds"] == seeds
        assert "warm_seeds" not in _solve_request(small_random_problem)
        with pytest.raises(ProtocolError) as err:
            _solve_request(small_random_problem, warm_seeds=[{"order": [0]}])
        assert err.value.code == "bad-request"
        with pytest.raises(ProtocolError):
            _solve_request(small_random_problem, warm_seeds="nope")


class TestAdmissionController:
    def test_fast_tier_always_admitted(self):
        admission = AdmissionController(ga_queue_limit=0, ga_workers=1)
        decision = admission.route("heft", ga_inflight=100)
        assert decision.tier == "fast"
        assert admission.stats()["admitted_fast"] == 1

    def test_ga_admitted_while_queue_has_room(self):
        admission = AdmissionController(ga_queue_limit=2, ga_workers=1)
        # inflight 0..2 -> queued 0..1 -> admitted; inflight 3 -> queued 2 -> shed
        for inflight in range(3):
            assert admission.route("ga", inflight).tier == "ga"
        decision = admission.route("ga", 3)
        assert decision.tier == "shed"
        assert "queue full" in decision.reason
        stats = admission.stats()
        assert stats["admitted_ga"] == 3
        assert stats["shed"] == 1
        assert stats["shed_queue_full"] == 1

    def test_zero_depth_queues_nothing(self):
        admission = AdmissionController(ga_queue_limit=0, ga_workers=2)
        assert admission.route("ga", 1).tier == "ga"  # free slot
        assert admission.route("ga", 2).tier == "shed"  # slots busy

    def test_deadline_shed_uses_ewma(self):
        admission = AdmissionController(ga_queue_limit=100, ga_workers=1)
        # No history: the deadline cannot be evaluated, depth rules alone.
        assert admission.route("ga", 5, deadline_s=0.001).tier == "ga"
        admission.observe_ga_seconds(10.0)
        decision = admission.route("ga", 5, deadline_s=1.0)
        assert decision.tier == "shed"
        assert "deadline" in decision.reason
        assert admission.stats()["shed_deadline"] == 1
        # A patient client is still admitted at the same depth.
        assert admission.route("ga", 5, deadline_s=1000.0).tier == "ga"

    def test_ewma_converges(self):
        admission = AdmissionController(ewma_alpha=0.5)
        admission.observe_ga_seconds(4.0)
        admission.observe_ga_seconds(2.0)
        assert admission.ga_seconds_ewma == pytest.approx(3.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AdmissionController(ga_queue_limit=-1)
        with pytest.raises(ValueError):
            AdmissionController(ga_workers=0)
        with pytest.raises(ValueError, match="admission mode"):
            AdmissionController(mode="psychic")
        with pytest.raises(ValueError, match="stream_threshold"):
            AdmissionController(mode="stream", stream_threshold=1.5)


class FakeClock:
    """Injectable monotonic clock for the inter-arrival estimator."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now

    def __call__(self) -> float:
        return self.now


class TestStreamAdmission:
    """The probabilistic admission mode (see repro.service.admission)."""

    def _controller(self, **kwargs):
        kwargs.setdefault("ga_queue_limit", 100)
        kwargs.setdefault("mode", "stream")
        return AdmissionController(**kwargs)

    def test_no_history_falls_back_to_depth_bound(self):
        admission = self._controller()
        assert admission.route("ga", 50, deadline_s=1e-9).tier == "ga"

    def test_start_probability_normal_model(self):
        admission = self._controller(ewma_alpha=0.5)
        # Two observations: ewma = 3, West's var = 0.5 * (0 + 0.5*4) = 1.
        admission.observe_ga_seconds(4.0)
        admission.observe_ga_seconds(2.0)
        assert admission.ga_seconds_ewma == pytest.approx(3.0)
        assert admission.ga_seconds_var == pytest.approx(1.0)
        # Behind 1 queued job: wait ~ N(3, 1); P(wait <= 3) = 0.5.
        assert admission.start_probability(1, 3.0) == pytest.approx(0.5)
        assert admission.start_probability(1, 5.0) > 0.97
        assert admission.start_probability(1, 1.0) < 0.03
        # No deadline or no history -> no test.
        assert admission.start_probability(1, None) is None
        assert AdmissionController(mode="stream").start_probability(1, 5.0) is None

    def test_zero_variance_degenerates_to_step(self):
        admission = self._controller()
        admission.observe_ga_seconds(2.0)  # single sample: var == 0
        assert admission.start_probability(2, 5.0) == 1.0
        assert admission.start_probability(2, 3.0) == 0.0

    def test_sheds_on_low_start_probability(self):
        admission = self._controller(stream_threshold=0.5)
        admission.observe_ga_seconds(10.0)
        decision = admission.route("ga", 5, deadline_s=1.0)
        assert decision.tier == "shed"
        assert "probability" in decision.reason
        stats = admission.stats()
        assert stats["shed_probability"] == 1
        assert stats["shed_deadline"] == 0
        # A patient client is admitted at the same depth.
        assert admission.route("ga", 5, deadline_s=1000.0).tier == "ga"

    def test_uncertainty_sheds_what_tiered_mode_admits(self):
        """The point of stream mode: variance prices the coin flip."""

        def primed(mode):
            admission = AdmissionController(
                ga_queue_limit=100,
                mode=mode,
                ewma_alpha=0.5,
                stream_threshold=0.6,
            )
            for x in (1.0, 9.0, 1.0, 9.0, 1.0, 9.0):
                admission.observe_ga_seconds(x)
            return admission

        tiered, stream = primed("tiered"), primed("stream")
        assert stream.ga_seconds_var > 0.0
        # Mean wait fits the deadline, so the point estimate admits...
        deadline = tiered.predicted_wait_s(4) * 1.05
        assert tiered.route("ga", 4 + 1, deadline_s=deadline).tier == "ga"
        # ...but success is barely better than a coin flip (~0.56),
        # below the configured 0.6 bar: uncertainty is priced in.
        assert stream.route("ga", 4 + 1, deadline_s=deadline).tier == "shed"

    def test_shed_xor_enqueued_partition(self):
        """Every route() lands in exactly one tier counter — both modes.

        This is the invariant the module docstring pins: a shed request
        is a terminal rewrite, never also enqueued, so the three
        counters always sum to the number of route calls.
        """
        for mode in ("tiered", "stream"):
            admission = AdmissionController(
                ga_queue_limit=2, mode=mode, stream_threshold=0.5
            )
            admission.observe_ga_seconds(10.0)
            admission.observe_ga_seconds(1.0)
            routed = 0
            for solver in ("heft", "ga", "ga", "cpop", "ga", "ga", "ga"):
                for inflight in (0, 2, 5):
                    for deadline_s in (None, 1e-6, 1e6):
                        decision = admission.route(
                            solver, inflight, deadline_s=deadline_s
                        )
                        routed += 1
                        assert decision.tier in ("fast", "ga", "shed")
                        # Never both shed and enqueued: a single tier.
                        if decision.tier == "shed":
                            assert decision.reason
            stats = admission.stats()
            assert (
                stats["admitted_fast"] + stats["admitted_ga"] + stats["shed"]
                == routed
            )
            assert (
                stats["shed_queue_full"]
                + stats["shed_deadline"]
                + stats["shed_probability"]
                == stats["shed"]
            )

    def test_stream_load_estimate(self):
        clock = FakeClock()
        admission = AdmissionController(
            ga_queue_limit=100, ga_workers=2, mode="stream", clock=clock
        )
        assert admission.stream_load() is None
        admission.route("ga", 0)
        clock.advance(2.0)
        admission.route("ga", 0)
        admission.observe_ga_seconds(8.0)
        # service 8s / (interarrival 2s * 2 workers) = 2x oversubscribed.
        assert admission.stream_load() == pytest.approx(2.0)
        assert admission.stats()["stream_load"] == pytest.approx(2.0)

    def test_stats_expose_the_mode(self):
        stats = self._controller(stream_threshold=0.25).stats()
        assert stats["mode"] == "stream"
        assert stats["stream_threshold"] == 0.25
        assert AdmissionController().stats()["mode"] == "tiered"

    def test_service_config_validates_admission_fields(self):
        from repro.service import ServiceConfig

        assert ServiceConfig(admission_mode="stream").stream_threshold == 0.5
        with pytest.raises(ValueError, match="admission mode"):
            ServiceConfig(admission_mode="psychic")
        with pytest.raises(ValueError, match="stream_threshold"):
            ServiceConfig(stream_threshold=-0.1)


class TestExecutePayload:
    def test_heuristic_matches_direct_api(self, small_random_problem):
        from repro.heuristics import HeftScheduler
        from repro.io import schedule_to_dict
        from repro.robustness.montecarlo import assess_robustness

        request = _solve_request(small_random_problem, seed=11)
        result = execute_payload(request)
        schedule = HeftScheduler().schedule(small_random_problem)
        assert result["schedule"] == schedule_to_dict(schedule)
        direct = assess_robustness(schedule, 50, rng=12)
        restored = report_from_dict(result["report"])
        assert restored.r1 == direct.r1
        assert restored.mean_makespan == direct.mean_makespan

    def test_ga_matches_direct_api(self, small_random_problem):
        from repro.core.robust import RobustScheduler
        from repro.ga.engine import GAParams
        from repro.io import schedule_to_dict

        ga = {"max_iterations": 5, "stagnation_limit": 3}
        request = _solve_request(
            small_random_problem, solver="ga", seed=4, epsilon=1.3, ga=ga
        )
        result = execute_payload(request)
        direct = RobustScheduler(
            epsilon=1.3, params=GAParams(**ga), rng=4
        ).solve(small_random_problem)
        assert result["schedule"] == schedule_to_dict(direct.schedule)
        assert result["m_heft"] == direct.m_heft
        assert result["ga_generations"] == direct.ga_result.generations

    def test_result_is_json_and_reproducible(self, small_random_problem):
        request = _solve_request(small_random_problem, seed=2)
        a = execute_payload(request)
        b = execute_payload(request)
        assert a == b
        json.dumps(a, allow_nan=False)  # cacheable strict JSON

    def test_fingerprint_checked(self, small_random_problem):
        request = _solve_request(small_random_problem)
        request["problem"]["uncertainty"]["ul"][0][0] += 1.0
        with pytest.raises(ValueError, match="fingerprint"):
            execute_payload(request)

    def test_fingerprint_public_helper(self, small_random_problem):
        payload = problem_to_dict(small_random_problem)
        assert payload["fingerprint"] == problem_fingerprint(small_random_problem)
