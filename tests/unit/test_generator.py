"""Unit tests for the layered random-DAG generator."""

import numpy as np
import pytest

from repro.graph.analysis import dag_levels
from repro.graph.generator import DagParams, random_dag, random_layering


class TestDagParams:
    def test_defaults_match_paper(self):
        p = DagParams()
        assert p.n == 100
        assert p.alpha == 1.0
        assert p.cc == 20.0
        assert p.ccr == 0.1

    def test_mean_data_size(self):
        assert DagParams(cc=20.0, ccr=0.5).mean_data_size == 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"alpha": 0.0},
            {"alpha": -1.0},
            {"cc": 0.0},
            {"ccr": -0.1},
            {"extra_in_degree": -1.0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            DagParams(**kwargs)


class TestRandomLayering:
    def test_partition_property(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 7, 30, 100):
            levels = random_layering(n, 1.0, rng)
            ids = np.concatenate(levels)
            assert sorted(ids.tolist()) == list(range(n))
            assert all(lvl.size >= 1 for lvl in levels)

    def test_ids_assigned_level_by_level(self):
        rng = np.random.default_rng(1)
        levels = random_layering(50, 1.0, rng)
        flat = np.concatenate(levels)
        assert np.array_equal(flat, np.arange(50))

    def test_alpha_controls_height(self):
        rng = np.random.default_rng(2)
        tall = np.mean([len(random_layering(100, 0.5, rng)) for _ in range(30)])
        flat = np.mean([len(random_layering(100, 2.0, rng)) for _ in range(30)])
        assert tall > flat  # alpha < 1 -> long/thin, alpha > 1 -> short/fat

    def test_single_task(self):
        levels = random_layering(1, 1.0, np.random.default_rng(3))
        assert len(levels) == 1
        assert levels[0].tolist() == [0]


class TestRandomDag:
    def test_reproducible(self):
        p = DagParams(n=40)
        a = random_dag(p, 99)
        b = random_dag(p, 99)
        assert a == b

    def test_task_count(self):
        g = random_dag(DagParams(n=25), 0)
        assert g.n == 25

    def test_connectivity_no_orphan_mid_levels(self):
        # Every non-entry task has at least one parent from the previous level,
        # so dag_levels should recover a contiguous layering.
        g = random_dag(DagParams(n=60), 5)
        levels = dag_levels(g)
        assert levels.min() == 0
        present = set(levels.tolist())
        assert present == set(range(max(present) + 1))

    def test_edges_point_forward(self):
        g = random_dag(DagParams(n=60), 7)
        assert np.all(g.edge_src < g.edge_dst)

    def test_mean_data_size_tracks_ccr(self):
        p = DagParams(n=200, ccr=1.0, cc=20.0)
        g = random_dag(p, 11)
        assert g.num_edges > 100
        # Uniform(0, 2*mean): sample mean within 25% of target.
        assert abs(g.edge_data.mean() - p.mean_data_size) / p.mean_data_size < 0.25

    def test_zero_ccr_zero_data(self):
        g = random_dag(DagParams(n=30, ccr=0.0), 13)
        assert np.all(g.edge_data == 0.0)

    def test_custom_name(self):
        g = random_dag(DagParams(n=5), 0, name="mygraph")
        assert g.name == "mygraph"

    def test_extra_in_degree_increases_density(self):
        sparse = random_dag(DagParams(n=80, extra_in_degree=0.0), 17)
        dense = random_dag(DagParams(n=80, extra_in_degree=3.0), 17)
        assert dense.num_edges > sparse.num_edges

    def test_single_task_graph(self):
        g = random_dag(DagParams(n=1), 0)
        assert g.n == 1
        assert g.num_edges == 0
