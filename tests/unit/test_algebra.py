"""Unit tests for repro.algebra: axes, catalogue, grid, CLI, service."""

import numpy as np
import pytest

from repro.algebra import (
    ALGEBRA_SOLVERS,
    CATALOGUE,
    INSERTIONS,
    LEGACY_EQUIVALENTS,
    MONOTONE_RANKINGS,
    ORDERS,
    RANKINGS,
    SELECTIONS,
    Components,
    ComponentScheduler,
    component_scheduler,
    rank_context,
    static_blevels,
)
from repro.cli import ALGO_FAMILIES, run as cli_run
from repro.core.problem import SchedulingProblem
from repro.experiments.algo_grid import FAMILIES, family_graph, run_algo_grid
from repro.graph.generator import DagParams
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.base import PartialSchedule
from repro.obs import InMemorySink
from repro.obs import runtime as obs_runtime
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel, UncertaintyParams


def _problem(seed=0, n=24, m=4, ul=2.0):
    return SchedulingProblem.random(
        m=m,
        dag_params=DagParams(n=n),
        uncertainty_params=UncertaintyParams(mean_ul=ul),
        rng=seed,
    )


def _chain_problem():
    """0 -> 1 plus a free task 2, two processors, deterministic times.

    Placing 0 on proc 0 and 1 on proc 1 leaves an idle prefix gap on
    proc 1 (communication delay) that only the insertion policy may
    fill.
    """
    graph = TaskGraph(3, [(0, 1)], [50.0])
    times = np.array([[5.0, 5.0], [4.0, 4.0], [1.0, 1.0]])
    return SchedulingProblem(
        graph=graph,
        platform=Platform(2),
        uncertainty=UncertaintyModel.deterministic(times),
        name="chain",
    )


class TestComponentsValidation:
    def test_defaults_are_heft(self):
        comps = Components()
        assert comps.spec == "upward/eft/insertion/static"
        assert CATALOGUE["heft"] == comps

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ranking": "nope"},
            {"selection": "nope"},
            {"insertion": "nope"},
            {"order": "nope"},
        ],
    )
    def test_unknown_axis_member_rejected(self, kwargs):
        with pytest.raises(ValueError, match="unknown"):
            Components(**kwargs)

    @pytest.mark.parametrize("ranking", sorted(set(RANKINGS) - MONOTONE_RANKINGS))
    def test_non_monotone_ranking_cannot_drive_static_order(self, ranking):
        selection = {"cp": "pinned", "oct": "oct"}.get(ranking, "eft")
        with pytest.raises(ValueError, match="not monotone"):
            Components(ranking, selection, "insertion", "static")

    def test_pinned_requires_cp_ranking(self):
        with pytest.raises(ValueError, match="critical-path"):
            Components("upward", "pinned", "insertion", "ready")

    def test_oct_selection_requires_oct_ranking(self):
        with pytest.raises(ValueError, match="optimistic cost table"):
            Components("upward", "oct", "insertion", "ready")

    def test_quantile_bounds(self):
        with pytest.raises(ValueError, match="q must be"):
            Components("upward", "padded", "insertion", "static", q=1.5)

    def test_spec_encodes_quantile_and_seed(self):
        padded = Components("upward", "padded", "insertion", "static", q=0.75)
        assert padded.spec == "upward/padded@q0.75/insertion/static"
        seeded = Components("random", "eft", "insertion", "ready", seed=7)
        assert seeded.spec == "random/eft@s7/insertion/ready"


class TestRankings:
    def test_blevels_decrease_along_every_edge(self):
        problem = _problem(seed=3, n=30)
        rank = static_blevels(problem)
        graph = problem.graph
        for u, v in zip(graph.edge_src, graph.edge_dst):
            assert rank[int(u)] > rank[int(v)]

    def test_random_ranking_is_deterministic_per_seed_and_size(self):
        problem = _problem(seed=1, n=20)
        comps = Components("random", "eft", "insertion", "ready", seed=5)
        a = rank_context(comps, problem).priorities
        b = rank_context(comps, problem).priorities
        assert np.array_equal(a, b)
        assert sorted(a.tolist()) == list(map(float, range(problem.n)))
        other = Components("random", "eft", "insertion", "ready", seed=6)
        assert not np.array_equal(
            a, rank_context(other, problem).priorities
        )

    def test_cp_context_has_pinning_info(self):
        problem = _problem(seed=2, n=15)
        ctx = rank_context(CATALOGUE["cpop"], problem)
        assert ctx.cp_tasks
        assert 0 <= ctx.cp_proc < problem.m

    def test_oct_context_has_table(self):
        problem = _problem(seed=2, n=15)
        ctx = rank_context(CATALOGUE["peft"], problem)
        assert ctx.oct_table is not None
        assert ctx.oct_table.shape == (problem.n, problem.m)


class TestInsertionPolicy:
    def test_append_only_refuses_the_gap_insertion_fills(self):
        problem = _chain_problem()
        for append_only, expect_gap_fill in ((False, True), (True, False)):
            partial = PartialSchedule(problem, append_only=append_only)
            partial.place(0, 0)
            partial.place(1, 1)  # comm delay leaves an idle prefix on 1
            assert partial.slots[1][0].start > 0.0  # there is a gap to fill
            start, _ = partial.eft(2, 1)
            if expect_gap_fill:
                assert start == 0.0
            else:
                assert start == partial.slots[1][-1].finish

    def test_unplace_is_exact_inverse_of_place(self):
        problem = _problem(seed=4, n=12, m=3)
        partial = PartialSchedule(problem)
        order = [int(v) for v in problem.graph.topological]
        for v in order[:-1]:
            partial.place(v, v % problem.m)
        before = (
            [[(s.start, s.finish, s.task) for s in row] for row in partial.slots],
            partial.finish_time.copy(),
            partial.proc_of.copy(),
        )
        last = order[-1]
        partial.place(last, 0)
        partial.unplace(last)
        assert before[0] == [
            [(s.start, s.finish, s.task) for s in row] for row in partial.slots
        ]
        assert np.array_equal(
            before[1], partial.finish_time, equal_nan=True
        )
        assert np.array_equal(before[2], partial.proc_of)

    def test_unplace_unplaced_task_rejected(self):
        partial = PartialSchedule(_problem(seed=4, n=5))
        with pytest.raises(ValueError, match="not placed"):
            partial.unplace(0)


class TestCatalogue:
    def test_legacy_names_plus_at_least_twelve_extras(self):
        assert set(LEGACY_EQUIVALENTS) <= set(CATALOGUE)
        extras = set(CATALOGUE) - set(LEGACY_EQUIVALENTS)
        assert len(extras) >= 12
        assert set(ALGEBRA_SOLVERS) == extras

    def test_protocol_solver_table_pins_the_catalogue(self):
        from repro.service import protocol

        assert protocol.ALGEBRA_SOLVERS == ALGEBRA_SOLVERS
        assert set(CATALOGUE) <= protocol.FAST_SOLVERS
        assert protocol.SOLVERS[-1] == "ga"

    def test_heuristic_for_serves_every_fast_solver(self):
        from repro.service.protocol import FAST_SOLVERS
        from repro.service.solvers import heuristic_for

        for solver in sorted(FAST_SOLVERS):
            assert heuristic_for(solver).name == solver

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown catalogue"):
            component_scheduler("not-a-scheduler")

    def test_scheduler_name_defaults_to_spec(self):
        comps = CATALOGUE["maxmin"]
        assert ComponentScheduler(comps).name == comps.spec
        assert component_scheduler("maxmin").name == "maxmin"

    def test_specs_are_unique(self):
        specs = [c.spec for c in CATALOGUE.values()]
        assert len(specs) == len(set(specs))


class TestObservability:
    @pytest.fixture(autouse=True)
    def _clean_session(self):
        obs_runtime.disable()
        yield
        obs_runtime.disable()

    def test_solve_span_and_per_component_counters(self):
        problem = _problem(seed=5, n=10)
        sink = InMemorySink()
        session = obs_runtime.enable(sink)
        component_scheduler("maxmin").schedule(problem)
        reg = session.registry
        assert reg.counter("algebra.solves").value == 1
        assert reg.counter("algebra.ranking.upward").value == 1
        assert reg.counter("algebra.selection.eft").value == 1
        assert reg.counter("algebra.insertion.insertion").value == 1
        assert reg.counter("algebra.order.greedy-maxeft").value == 1
        obs_runtime.disable()
        spans = sink.spans("algebra.solve")
        assert len(spans) == 1
        assert spans[0]["attrs"]["scheduler"] == "maxmin"
        assert spans[0]["attrs"]["n"] == problem.n

    def test_disabled_mode_adds_nothing(self):
        problem = _problem(seed=5, n=8)
        component_scheduler("heft").schedule(problem)  # must not raise


class TestFamilies:
    def test_cli_family_literal_pins_the_experiment(self):
        assert ALGO_FAMILIES == FAMILIES

    @pytest.mark.parametrize("family", FAMILIES)
    def test_family_graph_close_to_target(self, family):
        rng = np.random.default_rng(0)
        graph = family_graph(family, 40, rng)
        assert 1 <= graph.n <= 80

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            family_graph("torus", 10, np.random.default_rng(0))


class TestAlgoGridValidation:
    def test_unknown_combo_rejected(self):
        with pytest.raises(ValueError, match="unknown combination"):
            run_algo_grid(combos=("heft", "nope"), n_instances=1)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            run_algo_grid(families=("torus",), n_instances=1)

    def test_unknown_ranking_criterion_rejected(self):
        results = run_algo_grid(
            combos=("heft",),
            families=("fft",),
            n_instances=1,
            n_tasks=8,
            n_realizations=4,
        )
        with pytest.raises(ValueError, match="unknown ranking"):
            results.ranking(by="vibes")


class TestCli:
    def test_list_combos(self):
        out = cli_run(["algo-grid", "--list-combos"])
        for name in CATALOGUE:
            assert name in out
        assert "upward/lookahead/insertion/static" in out

    def test_small_sweep_renders_ranked_table(self):
        out = cli_run([
            "algo-grid",
            "--tasks", "10",
            "--instances", "1",
            "--realizations", "8",
            "--combos", "heft", "maxmin",
            "--families", "layered",
            "--rank-by", "r1",
            "--quiet",
        ])
        assert "algo grid by r1" in out
        assert "maxmin" in out

    def test_unknown_combo_is_a_clean_exit(self):
        with pytest.raises(SystemExit, match="unknown combination"):
            cli_run([
                "algo-grid", "--combos", "nope", "--quiet",
                "--instances", "1",
            ])
