"""Unit tests for repro.service.comm: framing, transports, addressing.

The contract under test is transport interchangeability: a message sent
over ``inproc://`` must be byte-identical to the same message over
``tcp://``, and both must surface the same typed errors (closed peer,
oversized frame) so the server's connection loop is transport-blind.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.comm import (
    DEFAULT_MAX_FRAME,
    Comm,
    CommClosedError,
    CommError,
    FrameTooLargeError,
    connect,
    decode_frame,
    encode_frame,
    listen,
    parse_address,
)
from repro.service.comm.framing import read_stream_frame


def run(coro):
    return asyncio.run(coro)


class TestAddressing:
    def test_parse_address_splits_scheme(self):
        assert parse_address("tcp://127.0.0.1:8642") == ("tcp", "127.0.0.1:8642")
        assert parse_address("inproc://node-a") == ("inproc", "node-a")

    @pytest.mark.parametrize(
        "bad", ["127.0.0.1:8642", "tcp://", "://x", "smtp://host:25", ""]
    )
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(CommError):
            parse_address(bad)


class TestFraming:
    def test_roundtrip_matches_protocol_wire_format(self):
        from repro.service.protocol import encode

        message = {"op": "ping", "id": 3}
        frame = encode_frame(message)
        assert frame == encode(message)  # byte-identical to the TCP wire
        assert frame.endswith(b"\n")
        assert decode_frame(frame) == message

    def test_readline_value_error_maps_to_frame_too_large(self):
        # StreamReader.readline signals an over-limit line as a plain
        # ValueError (wrapping LimitOverrunError).  The framing layer
        # must translate it -- this is the regression the pre-comm
        # server hit by only catching LimitOverrunError.
        async def scenario():
            reader = asyncio.StreamReader(limit=64)
            reader.feed_data(b"x" * 1024)
            with pytest.raises(FrameTooLargeError):
                await read_stream_frame(reader)

        run(scenario())

    def test_eof_maps_to_comm_closed(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            with pytest.raises(CommClosedError):
                await read_stream_frame(reader)

        run(scenario())


class _EchoFixture:
    """A listener echoing every message back, on any transport."""

    def __init__(self, address: str, **listen_kwargs):
        self.address = address
        self.listen_kwargs = listen_kwargs
        self.server_comms: list[Comm] = []

    async def __aenter__(self):
        async def echo(comm: Comm) -> None:
            self.server_comms.append(comm)
            try:
                while True:
                    await comm.send(await comm.recv())
            except (CommClosedError, FrameTooLargeError):
                pass
            finally:
                await comm.aclose()

        self.listener = await listen(self.address, echo, **self.listen_kwargs)
        return self

    async def __aexit__(self, *exc_info):
        await self.listener.aclose()
        for comm in self.server_comms:
            await comm.aclose()


@pytest.mark.parametrize(
    "address", ["tcp://127.0.0.1:0", "inproc://test-echo-{}"]
)
class TestTransports:
    """The same behavioural suite runs against both transports."""

    _seq = 0

    @classmethod
    def _address(cls, template: str) -> str:
        cls._seq += 1
        return template.format(cls._seq)

    def test_roundtrip(self, address):
        async def scenario():
            async with _EchoFixture(self._address(address)) as fixture:
                comm = await connect(fixture.listener.address)
                try:
                    for payload in ({"op": "ping", "id": 1}, {"data": "x" * 500}):
                        await comm.send(payload)
                        assert await comm.recv() == payload
                finally:
                    await comm.aclose()

        run(scenario())

    def test_close_gives_peer_eof(self, address):
        async def scenario():
            async with _EchoFixture(self._address(address)) as fixture:
                comm = await connect(fixture.listener.address)
                await comm.send({"op": "ping"})
                await comm.recv()
                await comm.aclose()
                assert comm.closed
                # The server handler exits on CommClosedError; give it a
                # beat, then its comm must be closed too.
                for _ in range(50):
                    if fixture.server_comms[0].closed:
                        break
                    await asyncio.sleep(0.01)
                assert fixture.server_comms[0].closed

        run(scenario())

    def test_send_after_close_raises(self, address):
        async def scenario():
            async with _EchoFixture(self._address(address)) as fixture:
                comm = await connect(fixture.listener.address)
                await comm.aclose()
                with pytest.raises(CommClosedError):
                    await comm.send({"op": "ping"})

        run(scenario())

    def test_oversized_outbound_frame_rejected(self, address):
        async def scenario():
            async with _EchoFixture(
                self._address(address), max_frame=4096
            ) as fixture:
                comm = await connect(fixture.listener.address, max_frame=4096)
                with pytest.raises(FrameTooLargeError):
                    await comm.send({"blob": "y" * 8192})
                # The channel survives a *local* oversize rejection.
                await comm.send({"op": "ping"})
                assert (await comm.recv())["op"] == "ping"
                await comm.aclose()

        run(scenario())


class TestTcpSpecifics:
    def test_listener_reports_bound_port(self):
        async def scenario():
            async def handler(comm):
                await comm.aclose()

            listener = await listen("tcp://127.0.0.1:0", handler)
            try:
                assert listener.port and listener.port > 0
                assert listener.address == f"tcp://127.0.0.1:{listener.port}"
            finally:
                await listener.aclose()

        run(scenario())

    def test_oversized_inbound_frame_typed_error(self):
        # A peer that ignores the limit: the reader side must raise
        # FrameTooLargeError, not a bare ValueError.
        async def scenario():
            got: list = []
            done = asyncio.Event()

            async def handler(comm):
                try:
                    await comm.recv()
                except Exception as exc:  # noqa: BLE001 - recording type
                    got.append(exc)
                finally:
                    done.set()
                    await comm.aclose()

            listener = await listen("tcp://127.0.0.1:0", handler, max_frame=1024)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", listener.port
                )
                writer.write(b"z" * 4096 + b"\n")
                await writer.drain()
                await asyncio.wait_for(done.wait(), timeout=5)
                assert len(got) == 1
                assert isinstance(got[0], FrameTooLargeError)
                writer.close()
            finally:
                await listener.aclose()

        run(scenario())


class TestInprocSpecifics:
    def test_duplicate_name_rejected(self):
        async def scenario():
            async def handler(comm):
                await comm.aclose()

            listener = await listen("inproc://dup-name", handler)
            with pytest.raises(CommError):
                await listen("inproc://dup-name", handler)
            await listener.aclose()
            # The name is free again after close.
            listener2 = await listen("inproc://dup-name", handler)
            await listener2.aclose()

        run(scenario())

    def test_connect_unknown_name_fails(self):
        async def scenario():
            with pytest.raises(CommError):
                await connect("inproc://nobody-listens-here")

        run(scenario())

    def test_default_max_frame_matches_pre_comm_limit(self):
        assert DEFAULT_MAX_FRAME == 16 * 1024 * 1024
