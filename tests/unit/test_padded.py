"""Unit tests for the quantile-padded HEFT baseline."""

import numpy as np
import pytest

from repro.heuristics.heft import HeftScheduler
from repro.heuristics.padded import QuantileHeftScheduler
from repro.robustness.montecarlo import assess_robustness
from repro.schedule.evaluation import evaluate
from tests.conftest import make_random_problem


class TestQuantileHeftScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileHeftScheduler(1.5)
        with pytest.raises(ValueError):
            QuantileHeftScheduler(-0.1)

    def test_median_equals_plain_heft(self, small_random_problem):
        """For the uniform model the median equals the mean, so q=0.5
        reproduces plain HEFT exactly."""
        plain = HeftScheduler().schedule(small_random_problem)
        padded = QuantileHeftScheduler(0.5).schedule(small_random_problem)
        assert padded == plain

    def test_schedule_bound_to_real_problem(self, small_random_problem):
        padded = QuantileHeftScheduler(0.9).schedule(small_random_problem)
        assert padded.problem is small_random_problem
        # Evaluation uses the real expected durations, not the padded view.
        assert np.allclose(
            padded.expected_durations(),
            small_random_problem.uncertainty.expected_durations(padded.proc_of),
        )

    def test_deterministic(self, small_random_problem):
        a = QuantileHeftScheduler(0.8).schedule(small_random_problem)
        b = QuantileHeftScheduler(0.8).schedule(small_random_problem)
        assert a == b

    def test_padding_changes_decisions_without_systematic_harm(self):
        """Overestimation must actually change placement decisions on some
        instances (it is not a no-op), and must not systematically *hurt*
        robustness.  Whether it helps is instance-dependent — that
        measurement lives in ablation A7 (benchmarks)."""
        deltas = []
        changed = 0
        for seed in range(6):
            problem = make_random_problem(300 + seed, n=20, m=3, mean_ul=4.0)
            plain = HeftScheduler().schedule(problem)
            padded = QuantileHeftScheduler(0.95).schedule(problem)
            changed += plain != padded
            rep_plain = assess_robustness(plain, 600, rng=seed)
            rep_padded = assess_robustness(padded, 600, rng=seed)
            deltas.append(rep_plain.mean_tardiness - rep_padded.mean_tardiness)
        assert changed >= 3
        assert np.mean(deltas) > -0.03

    def test_valid_partition(self, small_random_problem):
        s = QuantileHeftScheduler(0.99).schedule(small_random_problem)
        assert sorted(
            int(v) for tasks in s.proc_orders for v in tasks
        ) == list(range(small_random_problem.n))
        assert evaluate(s).makespan > 0
