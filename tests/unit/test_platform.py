"""Unit tests for :mod:`repro.platform.platform`."""

import numpy as np
import pytest

from repro.platform.platform import Platform


class TestConstruction:
    def test_default_unit_rates(self):
        p = Platform(3)
        assert p.m == 3
        assert p.comm_time(10.0, 0, 1) == 10.0
        assert p.comm_time(10.0, 2, 1) == 10.0

    def test_intra_processor_free(self):
        p = Platform(3)
        for i in range(3):
            assert p.comm_time(1e9, i, i) == 0.0

    def test_custom_rates(self):
        tr = np.array([[1.0, 2.0], [4.0, 1.0]])
        p = Platform(2, tr)
        assert p.comm_time(8.0, 0, 1) == 4.0
        assert p.comm_time(8.0, 1, 0) == 2.0

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError, match="at least one"):
            Platform(0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            Platform(3, np.ones((2, 2)))

    def test_rejects_nonpositive_offdiagonal(self):
        tr = np.array([[1.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="positive"):
            Platform(2, tr)

    def test_diagonal_ignored(self):
        tr = np.array([[0.0, 2.0], [2.0, -5.0]])  # bad diagonal is fine
        p = Platform(2, tr)
        assert p.comm_time(4.0, 0, 0) == 0.0


class TestCommTimes:
    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(0)
        tr = rng.uniform(0.5, 2.0, (4, 4))
        p = Platform(4, tr)
        data = rng.uniform(0, 10, 20)
        src = rng.integers(4, size=20)
        dst = rng.integers(4, size=20)
        vec = p.comm_times(data, src, dst)
        scalars = [p.comm_time(d, s, t) for d, s, t in zip(data, src, dst)]
        assert np.allclose(vec, scalars)

    def test_mean_inverse_rate_unit(self):
        assert Platform(4).mean_inverse_rate == 1.0

    def test_mean_inverse_rate_single_proc(self):
        assert Platform(1).mean_inverse_rate == 0.0

    def test_mean_inverse_rate_custom(self):
        tr = np.array([[1.0, 2.0], [0.5, 1.0]])
        p = Platform(2, tr)
        assert np.isclose(p.mean_inverse_rate, (0.5 + 2.0) / 2)
