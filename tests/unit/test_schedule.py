"""Unit tests for :class:`repro.schedule.schedule.Schedule`."""

import numpy as np
import pytest

from repro.schedule.schedule import Schedule


class TestConstruction:
    def test_basic(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        assert s.proc_of.tolist() == [0, 0, 1, 1]
        assert s.rank_on_proc.tolist() == [0, 1, 0, 1]

    def test_empty_processor_allowed(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1, 2, 3], []])
        assert s.proc_of.tolist() == [0, 0, 0, 0]
        assert len(s.proc_orders[1]) == 0

    def test_rejects_wrong_processor_count(self, diamond_problem):
        with pytest.raises(ValueError, match="processor orders"):
            Schedule(diamond_problem, [[0, 1, 2, 3]])

    def test_rejects_missing_task(self, diamond_problem):
        with pytest.raises(ValueError, match="not assigned"):
            Schedule(diamond_problem, [[0, 1], [2]])

    def test_rejects_duplicate_task(self, diamond_problem):
        with pytest.raises(ValueError, match="more than one"):
            Schedule(diamond_problem, [[0, 1, 2], [2, 3]])

    def test_rejects_out_of_range_task(self, diamond_problem):
        with pytest.raises(ValueError, match="out of range"):
            Schedule(diamond_problem, [[0, 1, 7], [2, 3]])

    def test_rejects_precedence_violating_order(self, diamond_problem):
        # 3 before its predecessor 1 on the same processor -> cyclic G_s.
        with pytest.raises(ValueError, match="invalid schedule"):
            Schedule(diamond_problem, [[0, 3, 1], [2]])

    def test_rejects_cross_processor_cycle(self, chain_problem):
        # P0 runs 2 before 0; chain edges 2->0 plus DAG 0->1->2 -> cycle.
        with pytest.raises(ValueError, match="invalid schedule"):
            Schedule(chain_problem, [[2, 0], [1]])


class TestDisjunctiveGraph:
    def test_no_extra_edges_when_chains_in_dag(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        # (0,1) and (2,3) are DAG edges, so G_s == G structurally.
        assert s.disjunctive.edge_src.shape[0] == 4

    def test_chain_edge_added(self, diamond_problem):
        s = Schedule(diamond_problem, [[0], [1, 2, 3]])
        # chain edges (1,2) added; (2,3) already DAG.
        assert s.disjunctive.edge_src.shape[0] == 5
        pairs = set(zip(s.disjunctive.edge_src.tolist(), s.disjunctive.edge_dst.tolist()))
        assert (1, 2) in pairs

    def test_same_proc_comm_zeroed(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        # Edge order canonical: (0,1),(0,2),(1,3),(2,3).
        assert s.comm_weights.tolist() == [0.0, 20.0, 10.0, 0.0]

    def test_chain_edges_zero_weight(self, diamond_problem):
        s = Schedule(diamond_problem, [[0], [1, 2, 3]])
        assert s.comm_weights[-1] == 0.0  # the appended chain edge

    def test_all_on_one_processor_no_comm(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1, 2, 3], []])
        assert np.all(s.comm_weights == 0.0)


class TestFromAssignment:
    def test_roundtrip(self, diamond_problem):
        order = np.array([0, 2, 1, 3])
        proc_of = np.array([0, 0, 1, 1])
        s = Schedule.from_assignment(diamond_problem, order, proc_of)
        assert s.proc_orders[0].tolist() == [0, 1]
        assert s.proc_orders[1].tolist() == [2, 3]

    def test_order_respected_within_processor(self, diamond_problem):
        order = np.array([0, 2, 1, 3])
        proc_of = np.array([0, 1, 1, 1])
        s = Schedule.from_assignment(diamond_problem, order, proc_of)
        assert s.proc_orders[1].tolist() == [2, 1, 3]

    def test_rejects_bad_proc(self, diamond_problem):
        with pytest.raises(ValueError, match="out of range"):
            Schedule.from_assignment(
                diamond_problem, np.array([0, 1, 2, 3]), np.array([0, 0, 0, 5])
            )

    def test_rejects_wrong_order_length(self, diamond_problem):
        with pytest.raises(ValueError, match="permutation"):
            Schedule.from_assignment(
                diamond_problem, np.array([0, 1, 2]), np.array([0, 0, 0, 0])
            )


class TestHelpers:
    def test_expected_durations(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        assert s.expected_durations().tolist() == [2.0, 4.0, 4.0, 3.0]

    def test_linear_order_is_topo_of_gs(self, diamond_problem):
        s = Schedule(diamond_problem, [[0], [1, 2, 3]])
        order = s.linear_order()
        pos = {int(v): i for i, v in enumerate(order)}
        for u, v in zip(s.disjunctive.edge_src, s.disjunctive.edge_dst):
            assert pos[int(u)] < pos[int(v)]

    def test_as_pairs_paper_notation(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        assert s.as_pairs() == [[(0, 1)], [(2, 3)]]

    def test_as_pairs_empty_and_singleton(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1, 2, 3], []])
        assert s.as_pairs() == [[(0, 1), (1, 2), (2, 3)], []]

    def test_realize_durations_shape(self, uncertain_diamond):
        s = Schedule(uncertain_diamond, [[0, 1], [2, 3]])
        durs = s.realize_durations(50, rng=0)
        assert durs.shape == (50, 4)
        low = uncertain_diamond.uncertainty.bcet[np.arange(4), s.proc_of]
        assert np.all(durs >= low)

    def test_equality(self, diamond_problem):
        a = Schedule(diamond_problem, [[0, 1], [2, 3]])
        b = Schedule(diamond_problem, [[0, 1], [2, 3]])
        c = Schedule(diamond_problem, [[0], [1, 2, 3]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a schedule"
