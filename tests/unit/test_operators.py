"""Unit tests for GA crossover, mutation and selection operators."""

import numpy as np
import pytest

from repro.ga.chromosome import Chromosome, random_chromosome
from repro.ga.crossover import (
    order_crossover,
    processor_crossover,
    single_point_crossover,
)
from repro.ga.mutation import legal_window, mutate
from repro.ga.selection import binary_tournament
from repro.graph.topology import is_topological_order
from tests.conftest import make_random_problem


class TestOrderCrossover:
    def test_hand_example(self):
        # Independent tasks: any permutation is topological.
        a = np.array([0, 1, 2, 3, 4])
        b = np.array([4, 3, 2, 1, 0])
        c1, c2 = order_crossover(a, b, 2)
        # c1: left [0,1]; right {2,3,4} ordered as in b -> [4,3,2].
        assert c1.tolist() == [0, 1, 4, 3, 2]
        # c2: left [4,3]; right {2,1,0} ordered as in a -> [0,1,2].
        assert c2.tolist() == [4, 3, 0, 1, 2]

    def test_children_are_permutations(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a = rng.permutation(8)
            b = rng.permutation(8)
            cut = int(rng.integers(1, 8))
            c1, c2 = order_crossover(a, b, cut)
            assert sorted(c1.tolist()) == list(range(8))
            assert sorted(c2.tolist()) == list(range(8))

    def test_preserves_topological_validity(self, small_random_problem):
        rng = np.random.default_rng(1)
        g = small_random_problem.graph
        for _ in range(30):
            pa = random_chromosome(small_random_problem, rng)
            pb = random_chromosome(small_random_problem, rng)
            cut = int(rng.integers(1, g.n))
            c1, c2 = order_crossover(pa.order, pb.order, cut)
            assert is_topological_order(g, c1)
            assert is_topological_order(g, c2)

    @pytest.mark.parametrize("cut", [0, 5])
    def test_rejects_bad_cut(self, cut):
        a = np.arange(5)
        with pytest.raises(ValueError, match="cut"):
            order_crossover(a, a[::-1].copy(), cut)


class TestProcessorCrossover:
    def test_hand_example(self):
        a = np.array([0, 0, 0, 0])
        b = np.array([1, 1, 1, 1])
        c1, c2 = processor_crossover(a, b, 2)
        assert c1.tolist() == [0, 0, 1, 1]
        assert c2.tolist() == [1, 1, 0, 0]

    def test_rejects_bad_cut(self):
        with pytest.raises(ValueError, match="cut"):
            processor_crossover(np.zeros(3, int), np.ones(3, int), 3)


class TestSinglePointCrossover:
    def test_children_valid(self, small_random_problem):
        rng = np.random.default_rng(2)
        for _ in range(20):
            pa = random_chromosome(small_random_problem, rng)
            pb = random_chromosome(small_random_problem, rng)
            c1, c2 = single_point_crossover(pa, pb, rng)
            c1.validate(small_random_problem)
            c2.validate(small_random_problem)

    def test_single_task_returns_parents(self, single_task_problem):
        pa = random_chromosome(single_task_problem, 0)
        pb = random_chromosome(single_task_problem, 1)
        c1, c2 = single_point_crossover(pa, pb, 2)
        assert c1 is pa and c2 is pb

    def test_mismatched_parents_raise(self, small_random_problem, diamond_problem):
        pa = random_chromosome(small_random_problem, 0)
        pb = random_chromosome(diamond_problem, 0)
        with pytest.raises(ValueError, match="same number"):
            single_point_crossover(pa, pb, 0)


class TestLegalWindow:
    def test_diamond_middle_task(self, diamond_problem):
        order = np.array([0, 1, 2, 3])
        # Task 1: pred 0 at reduced pos 0 -> lo=1; succ 3 at reduced pos 2 -> hi=2.
        lo, hi = legal_window(diamond_problem, order, 1)
        assert (lo, hi) == (1, 2)

    def test_entry_task(self, diamond_problem):
        order = np.array([0, 1, 2, 3])
        # Task 0: no preds -> lo=0; succs 1 (reduced 0) and 2 (reduced 1) -> hi=0.
        lo, hi = legal_window(diamond_problem, order, 0)
        assert (lo, hi) == (0, 0)

    def test_exit_task(self, diamond_problem):
        order = np.array([0, 1, 2, 3])
        # Task 3 depends on 1 and 2 (last reduced pos 2) -> only slot is the end.
        lo, hi = legal_window(diamond_problem, order, 3)
        assert (lo, hi) == (3, 3)

    def test_independent_tasks_full_window(self):
        problem = make_random_problem(0, n=5, m=2)
        from repro.core.problem import SchedulingProblem
        from repro.graph.taskgraph import TaskGraph

        g = TaskGraph(4)  # no edges
        p = SchedulingProblem.deterministic(g, np.ones((4, 2)))
        lo, hi = legal_window(p, np.array([0, 1, 2, 3]), 2)
        assert (lo, hi) == (0, 3)


class TestMutate:
    def test_preserves_validity(self, small_random_problem):
        rng = np.random.default_rng(3)
        c = random_chromosome(small_random_problem, rng)
        for _ in range(50):
            c = mutate(small_random_problem, c, rng)
            c.validate(small_random_problem)

    def test_changes_something_eventually(self, small_random_problem):
        rng = np.random.default_rng(4)
        c = random_chromosome(small_random_problem, rng)
        changed = any(
            mutate(small_random_problem, c, rng).key() != c.key() for _ in range(20)
        )
        assert changed

    def test_single_task(self, single_task_problem):
        c = random_chromosome(single_task_problem, 0)
        m = mutate(single_task_problem, c, 1)
        m.validate(single_task_problem)


class TestBinaryTournament:
    def test_size_preserved(self):
        rng = np.random.default_rng(0)
        for n in (2, 3, 7, 20):
            idx = binary_tournament(np.arange(n, dtype=float), rng)
            assert idx.shape == (n,)
            assert np.all((idx >= 0) & (idx < n))

    def test_best_gets_two_copies_even_population(self):
        fitness = np.array([1.0, 5.0, 3.0, 2.0])
        idx = binary_tournament(fitness, 0)
        assert np.sum(idx == 1) == 2  # systematic: best wins both rounds

    def test_worst_eliminated_even_population(self):
        fitness = np.array([1.0, 5.0, 3.0, 2.0])
        idx = binary_tournament(fitness, 1)
        assert np.sum(idx == 0) == 0

    def test_mean_fitness_improves(self):
        rng = np.random.default_rng(5)
        fitness = rng.uniform(0, 1, 30)
        idx = binary_tournament(fitness, rng)
        assert fitness[idx].mean() >= fitness.mean()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            binary_tournament(np.array([]), 0)
