"""Unit tests for the analytic-robustness fitness and sensitivity driver."""

import numpy as np
import pytest

from repro.ga.analytic_fitness import AnalyticRobustnessFitness
from repro.ga.chromosome import heft_chromosome, random_chromosome
from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import Individual
from repro.heuristics.heft import HeftScheduler
from repro.schedule.evaluation import evaluate, expected_makespan


def _individual(problem, chromosome) -> Individual:
    schedule = chromosome.decode(problem)
    ev = evaluate(schedule)
    return Individual(
        chromosome=chromosome,
        schedule=schedule,
        makespan=ev.makespan,
        avg_slack=ev.avg_slack,
    )


class TestAnalyticRobustnessFitness:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnalyticRobustnessFitness(0.0, 10.0)
        with pytest.raises(ValueError):
            AnalyticRobustnessFitness(1.0, 0.0)

    def test_feasible_scores_are_negated_tardiness(self, small_random_problem):
        fit = AnalyticRobustnessFitness.for_problem(small_random_problem, 2.0)
        ind = _individual(
            small_random_problem, heft_chromosome(small_random_problem)
        )
        scores = fit.scores([ind])
        from repro.robustness.clark import clark_makespan

        expected = -clark_makespan(ind.schedule).mean_relative_tardiness(ind.makespan)
        assert scores[0] == pytest.approx(expected)

    def test_infeasible_below_feasible(self, small_random_problem):
        m_heft = expected_makespan(
            HeftScheduler().schedule(small_random_problem)
        )
        fit = AnalyticRobustnessFitness(1.0, m_heft)
        rng = np.random.default_rng(0)
        feasible = _individual(
            small_random_problem, heft_chromosome(small_random_problem)
        )
        # Random chromosomes are near-surely infeasible at eps = 1.0.
        others = [
            _individual(small_random_problem, random_chromosome(small_random_problem, rng))
            for _ in range(5)
        ]
        scores = fit.scores([feasible, *others])
        infeasible = [
            s for ind, s in zip([feasible, *others], scores)
            if ind.makespan > fit.bound
        ]
        for s in infeasible:
            assert s < scores[0]

    def test_cache_hit(self, small_random_problem):
        fit = AnalyticRobustnessFitness.for_problem(small_random_problem, 2.0)
        ind = _individual(
            small_random_problem, heft_chromosome(small_random_problem)
        )
        fit.scores([ind])
        assert ind.chromosome.key() in fit._cache
        # Second call reuses the cache (same value).
        again = fit.scores([ind])
        assert again[0] == fit.scores([ind])[0]

    def test_ga_run_respects_constraint(self, small_random_problem):
        m_heft = expected_makespan(
            HeftScheduler().schedule(small_random_problem)
        )
        fit = AnalyticRobustnessFitness(1.1, m_heft)
        engine = GeneticScheduler(
            fit, GAParams(max_iterations=30, stagnation_limit=15), rng=1
        )
        result = engine.run(small_random_problem)
        assert result.best.makespan <= 1.1 * m_heft * (1 + 1e-9)

    def test_ga_reduces_analytic_tardiness(self, small_random_problem):
        from repro.robustness.clark import clark_makespan

        m_heft = expected_makespan(
            HeftScheduler().schedule(small_random_problem)
        )
        fit = AnalyticRobustnessFitness(1.5, m_heft)
        engine = GeneticScheduler(
            fit, GAParams(max_iterations=60, stagnation_limit=30), rng=2
        )
        result = engine.run(small_random_problem)
        heft_schedule = HeftScheduler().schedule(small_random_problem)
        heft_tard = clark_makespan(heft_schedule).mean_relative_tardiness(
            evaluate(heft_schedule).makespan
        )
        best_tard = clark_makespan(result.schedule).mean_relative_tardiness(
            result.best.makespan
        )
        assert best_tard <= heft_tard + 1e-9


class TestSensitivityDriver:
    def test_smoke_run(self):
        from repro.experiments.config import SCALES, ExperimentConfig
        from repro.experiments.sensitivity import run_sensitivity

        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=4)
        result = run_sensitivity(cfg, "m", (2, 4), mean_ul=2.0)
        assert result.values == (2.0, 4.0)
        assert result.r1_gain.shape == (2,)
        assert "Sensitivity" in result.to_table()

    def test_rejects_unknown_parameter(self):
        from repro.experiments.config import SCALES, ExperimentConfig
        from repro.experiments.sensitivity import run_sensitivity

        cfg = ExperimentConfig(scale=SCALES["smoke"])
        with pytest.raises(ValueError, match="parameter"):
            run_sensitivity(cfg, "n_tasks", (10,))
        with pytest.raises(ValueError, match="non-empty"):
            run_sensitivity(cfg, "ccr", ())
