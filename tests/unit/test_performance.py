"""Unit tests for the overall-performance score P(s) (Eqn. 9)."""

import math

import pytest

from repro.robustness.performance import (
    overall_performance,
    robustness_improvement,
)


class TestOverallPerformance:
    def test_identical_schedules_score_zero(self):
        assert overall_performance(100.0, 5.0, 100.0, 5.0, 0.5) == 0.0

    def test_hand_value(self):
        # r=0.5, M_HEFT/M = 2, R/R_HEFT = 2 -> P = 0.5*ln2 + 0.5*ln2 = ln2.
        p = overall_performance(50.0, 10.0, 100.0, 5.0, 0.5)
        assert p == pytest.approx(math.log(2.0))

    def test_r_weight_extremes(self):
        # r=1: only makespan matters.
        assert overall_performance(50.0, 1.0, 100.0, 99.0, 1.0) == pytest.approx(
            math.log(2.0)
        )
        # r=0: only robustness matters.
        assert overall_performance(999.0, 10.0, 100.0, 5.0, 0.0) == pytest.approx(
            math.log(2.0)
        )

    def test_shorter_makespan_increases_p(self):
        base = overall_performance(100.0, 5.0, 100.0, 5.0, 0.7)
        better = overall_performance(80.0, 5.0, 100.0, 5.0, 0.7)
        assert better > base

    def test_higher_robustness_increases_p(self):
        base = overall_performance(100.0, 5.0, 100.0, 5.0, 0.3)
        better = overall_performance(100.0, 8.0, 100.0, 5.0, 0.3)
        assert better > base

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            overall_performance(1.0, 1.0, 1.0, 1.0, 1.5)

    def test_rejects_nonpositive_makespan(self):
        with pytest.raises(ValueError):
            overall_performance(0.0, 1.0, 1.0, 1.0, 0.5)

    def test_rejects_nonpositive_robustness(self):
        with pytest.raises(ValueError):
            overall_performance(1.0, -1.0, 1.0, 1.0, 0.5)

    def test_infinite_robustness_both(self):
        p = overall_performance(80.0, math.inf, 100.0, math.inf, 0.5)
        assert p == pytest.approx(0.5 * math.log(100.0 / 80.0))

    def test_infinite_robustness_schedule_only(self):
        assert overall_performance(100.0, math.inf, 100.0, 5.0, 0.5) == math.inf

    def test_infinite_robustness_reference_only(self):
        assert overall_performance(100.0, 5.0, 100.0, math.inf, 0.5) == -math.inf

    def test_infinite_robustness_ignored_at_r1(self):
        p = overall_performance(80.0, math.inf, 100.0, 5.0, 1.0)
        assert p == pytest.approx(math.log(100.0 / 80.0))


class TestRobustnessImprovement:
    """The four finiteness combinations of the log-ratio term, pinned."""

    def test_both_finite(self):
        assert robustness_improvement(10.0, 5.0) == pytest.approx(math.log(2.0))

    def test_schedule_infinite_reference_finite(self):
        assert robustness_improvement(math.inf, 5.0) == math.inf

    def test_schedule_finite_reference_infinite(self):
        assert robustness_improvement(5.0, math.inf) == -math.inf

    def test_both_infinite_is_a_tie_not_nan(self):
        result = robustness_improvement(math.inf, math.inf)
        assert result == 0.0
        assert not math.isnan(result)

    def test_rejects_nonpositive_and_nan(self):
        with pytest.raises(ValueError):
            robustness_improvement(0.0, 1.0)
        with pytest.raises(ValueError):
            robustness_improvement(1.0, -2.0)
        with pytest.raises(ValueError):
            robustness_improvement(math.nan, 1.0)
