"""Warm-start layer: features, store, chromosome repair, GA seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SchedulingProblem
from repro.ga.chromosome import (
    Chromosome,
    random_chromosome,
    repair_chromosome,
)
from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import SlackFitness
from repro.graph.generator import DagParams
from repro.graph.topology import is_topological_order
from repro.io import N_FEATURES, feature_distance, problem_features
from repro.platform.uncertainty import UncertaintyParams
from repro.service.warmstart import WarmStartStore

from tests.conftest import make_random_problem


def _problem(seed: int, n: int = 24, m: int = 3) -> SchedulingProblem:
    return SchedulingProblem.random(
        m=m,
        dag_params=DagParams(n=n),
        uncertainty_params=UncertaintyParams(mean_ul=2.0),
        rng=seed,
    )


class TestProblemFeatures:
    def test_shape_and_determinism(self):
        problem = _problem(0)
        f1 = problem_features(problem)
        f2 = problem_features(problem)
        assert f1.shape == (N_FEATURES,)
        assert np.array_equal(f1, f2)
        assert np.all(np.isfinite(f1))

    def test_same_config_problems_are_near(self):
        base = problem_features(_problem(1))
        for seed in range(2, 7):
            dist = feature_distance(base, problem_features(_problem(seed)))
            assert dist < 2.0

    def test_different_scale_problems_are_far(self):
        small = problem_features(_problem(1, n=10, m=2))
        large = problem_features(_problem(1, n=200, m=8))
        assert feature_distance(small, large) > 2.0

    def test_single_task_no_edges(self):
        problem = make_random_problem(2, n=1, m=1)
        features = problem_features(problem)
        assert features.shape == (N_FEATURES,)
        assert np.all(np.isfinite(features))

    def test_distance_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal shape"):
            feature_distance(np.zeros(3), np.zeros(4))


class TestWarmStartStore:
    def _entry(self, i: int, n: int = 6):
        features = np.full(N_FEATURES, float(i) * 0.01)
        order = list(range(n))
        proc_of = [i % 2] * n
        return features, order, proc_of

    def test_record_then_suggest_nearest_first(self):
        store = WarmStartStore()
        for i in range(3):
            features, order, proc_of = self._entry(i)
            store.record(6, 2, f"fp{i}", features, order, proc_of)
        query, _, _ = self._entry(0)
        out = store.suggest(6, 2, query, k=2)
        assert [s["proc_of"][0] for s in out] == [0, 1]
        assert all(set(s) == {"order", "proc_of"} for s in out)

    def test_suggest_respects_shape_bucket(self):
        store = WarmStartStore()
        features, order, proc_of = self._entry(0)
        store.record(6, 2, "fp", features, order, proc_of)
        assert store.suggest(6, 3, features) == []
        assert store.suggest(7, 2, features) == []

    def test_suggest_gated_by_distance(self):
        store = WarmStartStore(max_distance=0.5)
        features, order, proc_of = self._entry(0)
        store.record(6, 2, "fp", features, order, proc_of)
        far = features + 1.0
        assert store.suggest(6, 2, far) == []
        assert len(store.suggest(6, 2, features)) == 1

    def test_re_record_replaces_and_does_not_grow(self):
        store = WarmStartStore()
        features, order, proc_of = self._entry(0)
        store.record(6, 2, "fp", features, order, proc_of)
        store.record(6, 2, "fp", features, order, [1] * 6)
        assert len(store) == 1
        assert store.suggest(6, 2, features)[0]["proc_of"] == [1] * 6

    def test_per_bucket_fifo_eviction(self):
        store = WarmStartStore(max_per_bucket=2)
        for i in range(3):
            features, order, proc_of = self._entry(i)
            store.record(6, 2, f"fp{i}", features, order, proc_of)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["evicted"] == 1
        # The oldest entry (fp0) is gone: the nearest match for fp0's
        # features is now fp1.
        query, _, _ = self._entry(0)
        assert store.suggest(6, 2, query, k=1)[0]["proc_of"] == [1] * 6

    def test_global_budget_evicts_largest_bucket(self):
        store = WarmStartStore(max_per_bucket=8, max_entries=3)
        for i in range(3):
            features, order, proc_of = self._entry(i)
            store.record(6, 2, f"a{i}", features, order, proc_of)
        features = np.zeros(N_FEATURES)
        store.record(8, 2, "b0", features, list(range(8)), [0] * 8)
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["buckets"] == 2
        # The (6, 2) bucket was largest; its oldest entry was evicted.
        assert len(store.suggest(8, 2, features)) == 1

    def test_suggestions_are_copies(self):
        store = WarmStartStore()
        features, order, proc_of = self._entry(0)
        store.record(6, 2, "fp", features, order, proc_of)
        out = store.suggest(6, 2, features)[0]
        out["order"][0] = 99
        assert store.suggest(6, 2, features)[0]["order"][0] == 0

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            WarmStartStore(max_per_bucket=0)
        with pytest.raises(ValueError):
            WarmStartStore(max_entries=0)
        with pytest.raises(ValueError):
            WarmStartStore(max_distance=0.0)


class TestRepairChromosome:
    def test_valid_order_passes_through_exactly(self):
        problem = _problem(3)
        rng = np.random.default_rng(0)
        for _ in range(5):
            c = random_chromosome(problem, rng)
            repaired = repair_chromosome(problem, c.order, c.proc_of)
            assert np.array_equal(repaired.order, c.order)
            assert np.array_equal(repaired.proc_of, c.proc_of)

    def test_cross_problem_transfer_is_repaired(self):
        donor = _problem(4)
        target = _problem(5)
        rng = np.random.default_rng(1)
        c = random_chromosome(donor, rng)
        repaired = repair_chromosome(target, c.order, c.proc_of)
        repaired.validate(target)
        # The repair preserves the donor's relative preferences where
        # legal: it is a permutation of the same task set.
        assert sorted(repaired.order.tolist()) == list(range(target.n))

    def test_out_of_range_processors_wrapped(self):
        problem = _problem(6, m=3)
        rng = np.random.default_rng(2)
        c = random_chromosome(problem, rng)
        big = c.proc_of + 3  # all out of range, same residues
        repaired = repair_chromosome(problem, c.order, big)
        repaired.validate(problem)
        assert np.array_equal(repaired.proc_of, c.proc_of)

    def test_reversed_order_becomes_topological(self):
        problem = _problem(7)
        rng = np.random.default_rng(3)
        c = random_chromosome(problem, rng)
        repaired = repair_chromosome(problem, c.order[::-1].copy(), c.proc_of)
        assert is_topological_order(problem.graph, repaired.order)

    def test_rejects_non_permutation(self):
        problem = _problem(8)
        with pytest.raises(ValueError):
            repair_chromosome(
                problem,
                np.zeros(problem.n, dtype=np.int64),
                np.zeros(problem.n, dtype=np.int64),
            )


class TestEngineWarmStart:
    def _params(self):
        return GAParams(max_iterations=15, stagnation_limit=10)

    def test_run_is_deterministic_given_seeds(self):
        problem = _problem(9)
        seed = random_chromosome(problem, np.random.default_rng(4))
        runs = [
            GeneticScheduler(
                SlackFitness(), self._params(), rng=5, warm_start=[seed]
            ).run(problem)
            for _ in range(2)
        ]
        assert runs[0].best_fitness == runs[1].best_fitness
        assert runs[0].history.best_fitness == runs[1].history.best_fitness
        assert runs[0].best.chromosome.key() == runs[1].best.chromosome.key()

    def test_seeds_are_injected_into_initial_population(self):
        problem = _problem(10)
        seed = random_chromosome(problem, np.random.default_rng(6))
        engine = GeneticScheduler(
            SlackFitness(), self._params(), rng=7, warm_start=[seed]
        )
        population = engine._initial_population(problem)
        assert seed.key() in {c.key() for c in population}
        assert len(population) == engine.params.population_size

    def test_seed_count_capped_at_population_size(self):
        problem = _problem(11)
        rng = np.random.default_rng(8)
        seeds = [random_chromosome(problem, rng) for _ in range(40)]
        engine = GeneticScheduler(
            SlackFitness(), self._params(), rng=9, warm_start=seeds
        )
        population = engine._initial_population(problem)
        assert len(population) == engine.params.population_size

    def test_duplicate_seeds_deduplicated(self):
        problem = _problem(12)
        seed = random_chromosome(problem, np.random.default_rng(10))
        engine = GeneticScheduler(
            SlackFitness(), self._params(), rng=11, warm_start=[seed, seed]
        )
        population = engine._initial_population(problem)
        assert sum(c.key() == seed.key() for c in population) == 1

    def test_cross_problem_seed_cannot_corrupt_run(self):
        donor = _problem(13)
        target = _problem(14)
        seed = random_chromosome(donor, np.random.default_rng(12))
        result = GeneticScheduler(
            SlackFitness(), self._params(), rng=13, warm_start=[seed]
        ).run(target)
        result.best.chromosome.validate(target)

    def test_warm_starting_with_known_best_never_hurts(self):
        problem = _problem(15)
        cold = GeneticScheduler(SlackFitness(), self._params(), rng=16).run(
            problem
        )
        warm = GeneticScheduler(
            SlackFitness(),
            self._params(),
            rng=16,
            warm_start=[cold.best.chromosome],
        ).run(problem)
        assert warm.best_fitness >= cold.best_fitness
