"""Unit tests for schedule validation/repair and front-quality tools."""

import numpy as np
import pytest

from repro.moop.epsilon_front import epsilon_front
from repro.moop.pareto import coverage, hypervolume_2d
from repro.schedule.evaluation import evaluate
from repro.schedule.validation import (
    ValidationReport,
    schedule_from_proc_map,
    validate_orders,
)


class TestValidateOrders:
    def test_valid(self, diamond_problem):
        report = validate_orders(diamond_problem, [[0, 1], [2, 3]])
        assert report.ok
        assert "valid" in str(report)

    def test_missing_task(self, diamond_problem):
        report = validate_orders(diamond_problem, [[0, 1], [2]])
        assert not report.ok
        assert report.missing_tasks == (3,)

    def test_duplicated_task(self, diamond_problem):
        report = validate_orders(diamond_problem, [[0, 1, 2], [2, 3]])
        assert report.duplicated_tasks == (2,)

    def test_out_of_range(self, diamond_problem):
        report = validate_orders(diamond_problem, [[0, 1, 9], [2, 3]])
        assert report.out_of_range_tasks == (9,)

    def test_wrong_processor_count(self, diamond_problem):
        report = validate_orders(diamond_problem, [[0, 1, 2, 3]])
        assert report.wrong_processor_count == (2, 1)

    def test_precedence_conflict_direct(self, diamond_problem):
        report = validate_orders(diamond_problem, [[1, 0], [2, 3]])
        assert (1, 0) in report.precedence_conflicts

    def test_precedence_conflict_transitive(self, diamond_problem):
        # 3 before 0 on the same processor: 0 is a transitive ancestor.
        report = validate_orders(diamond_problem, [[3, 0], [1, 2]])
        assert (3, 0) in report.precedence_conflicts

    def test_multiple_problems_reported_together(self, diamond_problem):
        report = validate_orders(diamond_problem, [[1, 0, 0], [9]])
        assert report.duplicated_tasks
        assert report.out_of_range_tasks
        assert report.missing_tasks
        assert report.precedence_conflicts
        text = str(report)
        assert "duplicated" in text and "missing" in text

    def test_agreement_with_schedule_constructor(self, diamond_problem):
        """validate_orders().ok iff Schedule() accepts."""
        from repro.schedule.schedule import Schedule

        cases = [
            [[0, 1], [2, 3]],
            [[0, 3, 1], [2]],
            [[0, 1, 2, 3], []],
            [[2, 0, 1], [3]],
        ]
        for orders in cases:
            report = validate_orders(diamond_problem, orders)
            try:
                Schedule(diamond_problem, orders)
                constructed = True
            except ValueError:
                constructed = False
            assert report.ok == constructed, orders


class TestScheduleFromProcMap:
    def test_valid_output(self, small_random_problem):
        rng = np.random.default_rng(0)
        proc_of = rng.integers(small_random_problem.m, size=small_random_problem.n)
        s = schedule_from_proc_map(small_random_problem, proc_of)
        assert np.array_equal(s.proc_of, proc_of)
        assert evaluate(s).makespan > 0

    def test_rejects_bad_shapes(self, small_random_problem):
        with pytest.raises(ValueError, match="shape"):
            schedule_from_proc_map(small_random_problem, np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="out of range"):
            schedule_from_proc_map(
                small_random_problem,
                np.full(small_random_problem.n, 99, dtype=int),
            )


class TestHypervolume:
    def test_single_point(self):
        hv = hypervolume_2d(np.array([[1.0, 1.0]]), np.array([3.0, 3.0]))
        assert hv == pytest.approx(4.0)

    def test_staircase(self):
        pts = np.array([[1.0, 2.0], [2.0, 1.0]])
        hv = hypervolume_2d(pts, np.array([3.0, 3.0]))
        # Two 2x1 rectangles overlapping in a 1x1 square: 2 + 2 - 1 = 3.
        assert hv == pytest.approx(3.0)

    def test_dominated_point_ignored(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        hv = hypervolume_2d(pts, np.array([3.0, 3.0]))
        assert hv == pytest.approx(4.0)

    def test_points_outside_reference(self):
        assert hypervolume_2d(np.array([[5.0, 5.0]]), np.array([3.0, 3.0])) == 0.0

    def test_monotone_in_front_quality(self):
        worse = np.array([[2.0, 2.0]])
        better = np.array([[1.0, 1.0]])
        ref = np.array([4.0, 4.0])
        assert hypervolume_2d(better, ref) > hypervolume_2d(worse, ref)

    def test_validation(self):
        with pytest.raises(ValueError, match="2 objectives"):
            hypervolume_2d(np.ones((2, 3)), np.ones(3))
        with pytest.raises(ValueError, match="reference"):
            hypervolume_2d(np.ones((2, 2)), np.ones(3))


class TestCoverage:
    def test_full_coverage(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 1.0], [2.0, 0.5]])
        assert coverage(a, b) == 1.0

    def test_no_coverage(self):
        a = np.array([[2.0, 2.0]])
        b = np.array([[1.0, 1.0]])
        assert coverage(a, b) == 0.0

    def test_identical_points_covered(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([[1.0, 1.0]])
        assert coverage(a, b) == 1.0

    def test_partial(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([[2.0, 2.0], [0.5, 0.5]])
        assert coverage(a, b) == 0.5

    def test_asymmetric(self):
        a = np.array([[1.0, 3.0], [3.0, 1.0]])
        b = np.array([[2.0, 2.0]])
        assert coverage(a, b) == 0.0
        assert coverage(b, a) == 0.0


class TestEpsilonFront:
    @pytest.fixture(scope="class")
    def front(self):
        from repro.ga.engine import GAParams
        from tests.conftest import make_random_problem

        problem = make_random_problem(9, n=14, m=3, mean_ul=3.0)
        params = GAParams(max_iterations=40, stagnation_limit=20)
        return problem, epsilon_front(
            problem, (1.0, 1.4, 1.8), params=params, rng=0
        )

    def test_sorted_and_nondominated(self, front):
        _, result = front
        assert np.all(np.diff(result.makespans) >= 0)
        assert np.all(np.diff(result.slacks) >= 0)  # clean 2-D front shape

    def test_members_consistent(self, front):
        _, result = front
        for schedule, mk, sl in zip(result.schedules, result.makespans, result.slacks):
            ev = evaluate(schedule)
            assert np.isclose(ev.makespan, mk)
            assert np.isclose(ev.avg_slack, sl)

    def test_rejects_empty_grid(self, front):
        problem, _ = front
        with pytest.raises(ValueError, match="non-empty"):
            epsilon_front(problem, ())

    def test_m_heft_recorded(self, front):
        _, result = front
        assert result.m_heft > 0
        # eps = 1.0 member (if kept) respects the budget.
        assert result.makespans[0] <= result.m_heft * 1.8 * (1 + 1e-9)
