"""Unit tests for repro.cluster: specs, scheduling, checkpoints, metrics."""

import json
import time

import numpy as np
import pytest

from repro.cluster import (
    Checkpoint,
    ClusterConfig,
    ClusterMetrics,
    HeartbeatMonitor,
    Scheduler,
    TaskFailure,
    TaskSpec,
    TaskState,
    run_tasks,
)

# Module-level task functions (picklable; the serial path calls them
# in-process so closures would work, but mirroring the pool contract
# keeps the tests honest).


def _double(x):
    return 2 * x


def _sum_deps(dep_results, offset):
    return sum(dep_results.values()) + offset


_CALLS: list[str] = []


def _record_call(key):
    _CALLS.append(key)
    return key


def _fail_n_times(counter_box, n):
    counter_box.append(1)
    if len(counter_box) <= n:
        raise RuntimeError(f"attempt {len(counter_box)} fails")
    return len(counter_box)


def _always_raises():
    raise ValueError("poison")


class TestTaskSpec:
    def test_rejects_empty_key(self):
        with pytest.raises(ValueError, match="key"):
            TaskSpec(key="", fn=_double)

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError, match="callable"):
            TaskSpec(key="t", fn=42)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            TaskSpec(key="t", fn=_double, max_retries=-1)

    def test_rejects_self_dependency(self):
        with pytest.raises(ValueError, match="itself"):
            TaskSpec(key="t", fn=_double, deps=("t",))


class TestClusterConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_workers=-1)
        with pytest.raises(ValueError):
            ClusterConfig(heartbeat_interval=0)
        with pytest.raises(ValueError):
            ClusterConfig(heartbeat_interval=1.0, heartbeat_timeout=0.5)
        with pytest.raises(ValueError):
            ClusterConfig(poll_interval=0)


class TestSerialScheduling:
    def test_runs_in_submission_order(self):
        _CALLS.clear()
        specs = [TaskSpec(key=f"t{i}", fn=_record_call, args=(f"t{i}",)) for i in range(5)]
        out = Scheduler().run(specs)
        assert _CALLS == [f"t{i}" for i in range(5)]
        assert [o.key for o in out.values()] == [f"t{i}" for i in range(5)]
        assert all(o.ok for o in out.values())

    def test_dependency_results_passed(self):
        specs = [
            TaskSpec(key="a", fn=_double, args=(3,)),
            TaskSpec(key="b", fn=_double, args=(4,)),
            TaskSpec(
                key="total",
                fn=_sum_deps,
                args=(100,),
                deps=("a", "b"),
                pass_dep_results=True,
            ),
        ]
        out = Scheduler().run(specs)
        assert out["total"].result == 6 + 8 + 100

    def test_retry_then_success(self):
        box: list[int] = []
        spec = TaskSpec(key="flaky", fn=_fail_n_times, args=(box, 2), max_retries=2)
        out = Scheduler().run([spec])
        assert out["flaky"].ok
        assert out["flaky"].result == 3  # succeeded on the third attempt
        assert out["flaky"].retries == 2

    def test_poison_marked_failed_after_budget(self):
        sched = Scheduler()
        out = sched.run(
            [
                TaskSpec(key="poison", fn=_always_raises, max_retries=2),
                TaskSpec(key="fine", fn=_double, args=(1,)),
            ]
        )
        assert out["poison"].state is TaskState.FAILED
        assert out["poison"].retries == 2  # 3 attempts = 1 + 2 retries
        assert "poison" in out["poison"].error
        assert out["fine"].ok  # the failure never stalls the rest
        assert sched.metrics.failed == 1
        assert sched.metrics.retried == 2

    def test_dependency_failure_cascades(self):
        out = Scheduler().run(
            [
                TaskSpec(key="bad", fn=_always_raises, max_retries=0),
                TaskSpec(key="child", fn=_double, args=(1,), deps=("bad",)),
                TaskSpec(key="grandchild", fn=_double, args=(1,), deps=("child",)),
                TaskSpec(key="independent", fn=_double, args=(5,)),
            ]
        )
        assert out["bad"].state is TaskState.FAILED
        assert out["child"].state is TaskState.FAILED
        assert "bad" in out["child"].error
        assert out["grandchild"].state is TaskState.FAILED
        assert out["independent"].result == 10

    def test_run_tasks_raises_on_failure(self):
        with pytest.raises(TaskFailure, match="poison"):
            run_tasks([TaskSpec(key="poison", fn=_always_raises, max_retries=0)])


class TestValidation:
    def test_duplicate_keys_rejected(self):
        specs = [TaskSpec(key="t", fn=_double), TaskSpec(key="t", fn=_double)]
        with pytest.raises(ValueError, match="duplicate"):
            Scheduler().run(specs)

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Scheduler().run([TaskSpec(key="t", fn=_double, deps=("ghost",))])

    def test_cycle_rejected(self):
        specs = [
            TaskSpec(key="a", fn=_double, deps=("b",)),
            TaskSpec(key="b", fn=_double, deps=("a",)),
        ]
        with pytest.raises(ValueError, match="cycle"):
            Scheduler().run(specs)


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        ck = Checkpoint(tmp_path / "j.jsonl", run_id="run-1")
        ck.record("a", {"x": 1.5}, seed=(1, 2), retries=0)
        ck.record("b", [1, 2, 3])
        ck.close()
        loaded = Checkpoint(tmp_path / "j.jsonl", run_id="run-1").load()
        assert loaded == {"a": {"x": 1.5}, "b": [1, 2, 3]}

    def test_missing_file_loads_empty(self, tmp_path):
        assert Checkpoint(tmp_path / "none.jsonl").load() == {}

    def test_torn_tail_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        ck = Checkpoint(path, run_id="r")
        ck.record("a", 1)
        ck.record("b", 2)
        ck.close()
        text = path.read_text()
        path.write_text(text[: len(text) - 8])  # tear the final record
        assert Checkpoint(path, run_id="r").load() == {"a": 1}

    def test_run_id_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        ck = Checkpoint(path, run_id="seed=42")
        ck.record("a", 1)
        ck.close()
        with pytest.raises(ValueError, match="seed=42"):
            Checkpoint(path, run_id="seed=7").load()

    def test_codecs_applied(self, tmp_path):
        ck = Checkpoint(
            tmp_path / "j.jsonl",
            encode=lambda arr: arr.tolist(),
            decode=lambda lst: np.asarray(lst),
        )
        values = np.asarray([1.25, 2.5])
        ck.record("a", values)
        ck.close()
        restored = ck.load()["a"]
        assert np.array_equal(restored, values)

    def test_scheduler_restores_and_skips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = [TaskSpec(key=f"t{i}", fn=_record_call, args=(f"t{i}",)) for i in range(4)]
        Scheduler(checkpoint=Checkpoint(path, run_id="r")).run(specs)
        _CALLS.clear()
        sched = Scheduler(checkpoint=Checkpoint(path, run_id="r"))
        out = sched.run(specs)
        assert _CALLS == []  # nothing re-executed
        assert all(o.from_checkpoint for o in out.values())
        assert sched.metrics.restored == 4


class TestHeartbeatMonitor:
    def test_overdue_detection(self):
        monitor = HeartbeatMonitor(timeout=1.0)
        monitor.register(0, now=100.0)
        monitor.register(1, now=100.0)
        monitor.beat(1, now=102.0)
        assert monitor.overdue(now=102.0) == [0]
        monitor.forget(0)
        assert monitor.overdue(now=110.0) == [1]

    def test_disabled_timeout(self):
        monitor = HeartbeatMonitor(timeout=None)
        monitor.register(0, now=0.0)
        assert monitor.overdue(now=1e9) == []

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            HeartbeatMonitor(timeout=0.0)


class TestMetrics:
    def test_counters_and_snapshot(self):
        sched = Scheduler()
        sched.run([TaskSpec(key=f"t{i}", fn=_double, args=(i,)) for i in range(3)])
        m = sched.metrics
        assert (m.n_tasks, m.done, m.failed, m.queued) == (3, 3, 0, 0)
        snap = m.snapshot()
        assert snap["done"] == 3
        assert snap["throughput_per_s"] > 0
        assert json.dumps(snap)  # JSON-ready

    def test_status_line_mentions_progress(self):
        m = ClusterMetrics(n_tasks=10, done=4, running=2, queued=4, retried=1)
        line = m.status_line()
        assert "4/10 done" in line
        assert "retried" in line

    def test_dump(self, tmp_path):
        m = ClusterMetrics(n_tasks=2, done=2)
        m.dump(tmp_path / "metrics.json")
        data = json.loads((tmp_path / "metrics.json").read_text())
        assert data["n_tasks"] == 2

    def test_utilization_bounded(self):
        m = ClusterMetrics(n_workers=2, busy_seconds=1e9)
        time.sleep(0.001)
        assert m.utilization == 1.0


def _sleepy(dt):
    time.sleep(dt)
    return dt


class TestResumeElapsedCarry:
    """--resume must continue the run clock, not restart it from zero."""

    def test_snapshot_monotonic_across_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = [
            TaskSpec(key=f"t{i}", fn=_sleepy, args=(0.01,)) for i in range(3)
        ]
        first = Scheduler(checkpoint=Checkpoint(path, run_id="r"))
        first.run(specs)
        before = first.metrics.snapshot()

        # What an interrupted run durably leaves behind: the run clock at
        # the last checkpoint append.
        journaled = Checkpoint(path, run_id="r")
        journaled.load()
        assert 0 < journaled.run_elapsed <= before["elapsed_seconds"]

        second = Scheduler(checkpoint=Checkpoint(path, run_id="r"))
        out = second.run(specs)
        after = second.metrics.snapshot()

        assert all(o.from_checkpoint for o in out.values())
        assert after["prior_elapsed_seconds"] == journaled.run_elapsed
        assert after["elapsed_seconds"] >= journaled.run_elapsed
        assert after["busy_seconds"] >= before["busy_seconds"]

    def test_journal_records_carry_run_elapsed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Scheduler(checkpoint=Checkpoint(path, run_id="r")).run(
            [TaskSpec(key="a", fn=_sleepy, args=(0.005,))]
        )
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[1]["run_elapsed"] > 0
        ck = Checkpoint(path, run_id="r")
        ck.load()
        assert ck.run_elapsed == lines[1]["run_elapsed"]
        assert ck.busy_elapsed == lines[1]["elapsed"]

    def test_legacy_journal_without_run_elapsed_loads(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps(
                {"format": "repro.checkpoint", "version": 1, "run_id": "r"}
            )
            + "\n"
            + json.dumps(
                {"key": "a", "seed": None, "retries": 0, "elapsed": 0.5,
                 "result": 1}
            )
            + "\n"
        )
        ck = Checkpoint(path, run_id="r")
        assert ck.load() == {"a": 1}
        assert ck.run_elapsed == 0.0
        assert ck.busy_elapsed == 0.5


class TestIncrementalSubmitPoll:
    """The non-blocking submit/poll API the service daemon drives."""

    def test_serial_submit_poll_roundtrip(self):
        scheduler = Scheduler()
        scheduler.submit(TaskSpec(key="a", fn=_double, args=(3,)))
        scheduler.submit(TaskSpec(key="b", fn=_double, args=(5,)))
        assert scheduler.pending() == 2
        results = {}
        while scheduler.pending():
            for outcome in scheduler.poll():
                assert outcome.ok
                results[outcome.key] = outcome.result
        assert results == {"a": 6, "b": 10}
        scheduler.close()

    def test_each_outcome_delivered_exactly_once(self):
        scheduler = Scheduler()
        scheduler.submit(TaskSpec(key="a", fn=_double, args=(1,)))
        first = scheduler.poll()
        assert [o.key for o in first] == ["a"]
        assert scheduler.poll() == []
        scheduler.close()

    def test_dependencies_and_dep_results(self):
        scheduler = Scheduler()
        scheduler.submit(TaskSpec(key="x", fn=_double, args=(2,)))
        scheduler.submit(TaskSpec(key="y", fn=_double, args=(3,)))
        scheduler.submit(
            TaskSpec(
                key="z",
                fn=_sum_deps,
                args=(100,),
                deps=("x", "y"),
                pass_dep_results=True,
            )
        )
        results = {}
        while scheduler.pending():
            for outcome in scheduler.poll():
                results[outcome.key] = outcome.result
        assert results["z"] == 4 + 6 + 100
        scheduler.close()

    def test_unknown_dep_rejected(self):
        scheduler = Scheduler()
        with pytest.raises(ValueError, match="unknown task"):
            scheduler.submit(TaskSpec(key="a", fn=_double, args=(1,), deps=("ghost",)))
        scheduler.close()

    def test_duplicate_key_rejected(self):
        scheduler = Scheduler()
        scheduler.submit(TaskSpec(key="a", fn=_double, args=(1,)))
        with pytest.raises(ValueError, match="duplicate"):
            scheduler.submit(TaskSpec(key="a", fn=_double, args=(2,)))
        scheduler.close()

    def test_failed_dependency_cascades(self):
        scheduler = Scheduler()
        scheduler.submit(TaskSpec(key="bad", fn=_always_raises, max_retries=0))
        outcomes = {}
        while scheduler.pending():
            for outcome in scheduler.poll():
                outcomes[outcome.key] = outcome
        # A task submitted after its dependency already failed fails too.
        scheduler.submit(
            TaskSpec(key="child", fn=_sum_deps, args=(0,), deps=("bad",))
        )
        for outcome in scheduler.poll():
            outcomes[outcome.key] = outcome
        assert not outcomes["bad"].ok
        assert not outcomes["child"].ok
        assert "dependency" in outcomes["child"].error
        scheduler.close()

    def test_batch_run_guarded_while_incremental(self):
        scheduler = Scheduler()
        scheduler.submit(TaskSpec(key="a", fn=_double, args=(1,)))
        with pytest.raises(RuntimeError, match="incremental"):
            scheduler.run([TaskSpec(key="b", fn=_double, args=(2,))])
        scheduler.close()
        # After close() the batch entry point works again.
        outcomes = scheduler.run([TaskSpec(key="b", fn=_double, args=(2,))])
        assert outcomes["b"].result == 4

    def test_close_is_idempotent_and_resets(self):
        scheduler = Scheduler()
        scheduler.submit(TaskSpec(key="a", fn=_double, args=(1,)))
        scheduler.poll()
        scheduler.close()
        scheduler.close()
        scheduler.submit(TaskSpec(key="a", fn=_double, args=(7,)))
        assert scheduler.poll()[0].result == 14
        scheduler.close()

    def test_pool_submit_poll(self):
        scheduler = Scheduler(ClusterConfig(n_workers=2))
        for i in range(6):
            scheduler.submit(TaskSpec(key=f"t{i}", fn=_double, args=(i,)))
        results = {}
        deadline = time.monotonic() + 60
        while scheduler.pending() and time.monotonic() < deadline:
            for outcome in scheduler.poll(timeout=0.2):
                assert outcome.ok, outcome.error
                results[outcome.key] = outcome.result
        scheduler.close()
        assert results == {f"t{i}": 2 * i for i in range(6)}

    def test_pool_matches_serial_results(self):
        serial = Scheduler()
        pool = Scheduler(ClusterConfig(n_workers=2))
        for i in range(4):
            spec = TaskSpec(key=f"t{i}", fn=_double, args=(i,))
            serial.submit(spec)
            pool.submit(spec)
        def drain(s):
            out = {}
            deadline = time.monotonic() + 60
            while s.pending() and time.monotonic() < deadline:
                for o in s.poll(timeout=0.2):
                    out[o.key] = o.result
            return out
        try:
            assert drain(serial) == drain(pool)
        finally:
            serial.close()
            pool.close()
