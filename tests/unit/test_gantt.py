"""Unit tests for ASCII Gantt rendering."""

import pytest

from repro.schedule.gantt import render_gantt
from repro.schedule.schedule import Schedule


class TestRenderGantt:
    def test_basic_structure(self, diamond_problem):
        schedule = Schedule(diamond_problem, [[0, 1], [2, 3]])
        chart = render_gantt(schedule, width=40)
        lines = chart.splitlines()
        assert len(lines) == 3  # 2 processors + axis
        assert lines[0].startswith("P0 |")
        assert lines[1].startswith("P1 |")
        assert "29" in lines[2]  # makespan on the axis

    def test_bars_positioned(self, diamond_problem):
        schedule = Schedule(diamond_problem, [[0, 1], [2, 3]])
        chart = render_gantt(schedule, width=58)
        p0 = chart.splitlines()[0]
        # Task 0 occupies the left edge of P0's row.
        bar_region = p0[4:]  # strip "P0 |"
        assert bar_region[0] != " "

    def test_custom_labels(self, diamond_problem):
        schedule = Schedule(diamond_problem, [[0, 1], [2, 3]])
        chart = render_gantt(
            schedule, width=72, labels={2: "bigjob", 3: "tail"}
        )
        assert "bigjob" in chart

    def test_custom_durations(self, diamond_problem):
        import numpy as np

        schedule = Schedule(diamond_problem, [[0, 1], [2, 3]])
        chart = render_gantt(schedule, np.array([2.0, 15.0, 4.0, 3.0]), width=40)
        assert "30" in chart.splitlines()[-1]  # stretched makespan

    def test_empty_processor_row(self, diamond_problem):
        schedule = Schedule(diamond_problem, [[0, 1, 2, 3], []])
        chart = render_gantt(schedule, width=40)
        p1 = chart.splitlines()[1]
        assert set(p1[4:-1]) == {" "}

    def test_rejects_tiny_width(self, diamond_problem):
        schedule = Schedule(diamond_problem, [[0, 1], [2, 3]])
        with pytest.raises(ValueError, match="width"):
            render_gantt(schedule, width=5)

    def test_single_task(self, single_task_problem):
        schedule = Schedule(single_task_problem, [[0], []])
        chart = render_gantt(schedule, width=20)
        assert chart.splitlines()[0].count("=") > 5  # bar spans the row
