"""Unit tests for :mod:`repro.graph.topology`."""

import numpy as np
import pytest

from repro.graph.taskgraph import TaskGraph
from repro.graph.topology import (
    ancestors_mask,
    descendants_mask,
    is_topological_order,
    random_topological_order,
    topological_order,
)


class TestIsTopologicalOrder:
    def test_valid_order(self, diamond_graph):
        assert is_topological_order(diamond_graph, np.array([0, 1, 2, 3]))
        assert is_topological_order(diamond_graph, np.array([0, 2, 1, 3]))

    def test_violating_order(self, diamond_graph):
        assert not is_topological_order(diamond_graph, np.array([1, 0, 2, 3]))
        assert not is_topological_order(diamond_graph, np.array([3, 2, 1, 0]))

    def test_not_a_permutation(self, diamond_graph):
        assert not is_topological_order(diamond_graph, np.array([0, 0, 2, 3]))
        assert not is_topological_order(diamond_graph, np.array([0, 1, 2]))
        assert not is_topological_order(diamond_graph, np.array([0, 1, 2, 4]))


class TestRandomTopologicalOrder:
    def test_always_valid(self, diamond_graph):
        rng = np.random.default_rng(0)
        for _ in range(50):
            order = random_topological_order(diamond_graph, rng)
            assert is_topological_order(diamond_graph, order)

    def test_reaches_multiple_extensions(self, diamond_graph):
        rng = np.random.default_rng(1)
        seen = {tuple(random_topological_order(diamond_graph, rng)) for _ in range(100)}
        # The diamond has exactly two linear extensions.
        assert seen == {(0, 1, 2, 3), (0, 2, 1, 3)}

    def test_deterministic_given_seed(self, diamond_graph):
        a = random_topological_order(diamond_graph, 42)
        b = random_topological_order(diamond_graph, 42)
        assert np.array_equal(a, b)

    def test_single_node(self):
        g = TaskGraph(1)
        assert random_topological_order(g, 0).tolist() == [0]

    def test_independent_tasks(self):
        g = TaskGraph(5)
        order = random_topological_order(g, 3)
        assert sorted(order.tolist()) == [0, 1, 2, 3, 4]


class TestClosures:
    def test_descendants_diamond(self, diamond_graph):
        assert descendants_mask(diamond_graph, 0).tolist() == [False, True, True, True]
        assert descendants_mask(diamond_graph, 1).tolist() == [False, False, False, True]
        assert descendants_mask(diamond_graph, 3).tolist() == [False] * 4

    def test_ancestors_diamond(self, diamond_graph):
        assert ancestors_mask(diamond_graph, 3).tolist() == [True, True, True, False]
        assert ancestors_mask(diamond_graph, 0).tolist() == [False] * 4

    def test_deep_chain(self):
        g = TaskGraph(5, [(i, i + 1) for i in range(4)])
        assert descendants_mask(g, 0).sum() == 4
        assert ancestors_mask(g, 4).sum() == 4
        assert descendants_mask(g, 2).tolist() == [False, False, False, True, True]

    def test_out_of_range_raises(self, diamond_graph):
        with pytest.raises(ValueError):
            descendants_mask(diamond_graph, 4)
        with pytest.raises(ValueError):
            ancestors_mask(diamond_graph, -1)

    def test_closure_excludes_self(self, diamond_graph):
        for v in range(4):
            assert not descendants_mask(diamond_graph, v)[v]
            assert not ancestors_mask(diamond_graph, v)[v]


def test_topological_order_matches_graph(diamond_graph):
    assert np.array_equal(topological_order(diamond_graph), diamond_graph.topological)
