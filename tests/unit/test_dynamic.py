"""Unit tests for the dynamic (online) scheduling baseline."""

import numpy as np
import pytest

from repro.sim.dynamic import assess_dynamic, simulate_dynamic
from tests.conftest import make_random_problem


class TestSimulateDynamic:
    def test_all_tasks_placed(self, small_random_problem):
        run = simulate_dynamic(
            small_random_problem, small_random_problem.expected_times
        )
        assert np.all(run.proc_of >= 0)
        assert np.all(np.isfinite(run.finish_times))
        assert run.makespan == run.finish_times.max()

    def test_precedence_respected(self, small_random_problem):
        run = simulate_dynamic(
            small_random_problem, small_random_problem.expected_times
        )
        graph = small_random_problem.graph
        platform = small_random_problem.platform
        for u, v, d in graph.edges():
            arrival = run.finish_times[u] + platform.comm_time(
                d, int(run.proc_of[u]), int(run.proc_of[v])
            )
            assert run.start_times[v] >= arrival - 1e-9

    def test_no_processor_overlap(self, small_random_problem):
        run = simulate_dynamic(
            small_random_problem, small_random_problem.expected_times
        )
        for p in range(small_random_problem.m):
            tasks = np.flatnonzero(run.proc_of == p)
            order = tasks[np.argsort(run.start_times[tasks])]
            for a, b in zip(order[:-1], order[1:]):
                assert run.start_times[b] >= run.finish_times[a] - 1e-9

    def test_per_task_durations_accepted(self, diamond_problem):
        run = simulate_dynamic(diamond_problem, np.array([2.0, 4.0, 4.0, 3.0]))
        assert run.makespan > 0

    def test_rejects_bad_shapes(self, diamond_problem):
        with pytest.raises(ValueError, match="durations"):
            simulate_dynamic(diamond_problem, np.ones((3, 2)))
        with pytest.raises(ValueError, match="durations"):
            simulate_dynamic(diamond_problem, np.ones(3))

    def test_deterministic(self, small_random_problem):
        a = simulate_dynamic(
            small_random_problem, small_random_problem.expected_times
        )
        b = simulate_dynamic(
            small_random_problem, small_random_problem.expected_times
        )
        assert a.makespan == b.makespan
        assert np.array_equal(a.proc_of, b.proc_of)

    def test_competitive_with_heft_in_expectation(self):
        """Fed exact expected durations, the online MCT policy should be in
        HEFT's ballpark (it is HEFT without insertion or lookahead)."""
        from repro.heuristics.heft import HeftScheduler
        from repro.schedule.evaluation import expected_makespan

        ratios = []
        for seed in range(6):
            problem = make_random_problem(seed, n=20, m=3)
            online = simulate_dynamic(problem, problem.expected_times).makespan
            heft = expected_makespan(HeftScheduler().schedule(problem))
            ratios.append(online / heft)
        assert np.mean(ratios) < 1.4

    def test_adapts_to_realization(self):
        """When one processor's realized speed collapses, the online policy
        visibly reacts relative to its expected-duration plan."""
        problem = make_random_problem(3, n=15, m=3, mean_ul=4.0)
        expected_run = simulate_dynamic(problem, problem.expected_times)
        # Worst-case durations: everything at the upper bound.
        unc = problem.uncertainty
        worst = (2.0 * unc.ul - 1.0) * unc.bcet
        worst_run = simulate_dynamic(problem, worst)
        assert worst_run.makespan > expected_run.makespan


class TestAssessDynamic:
    def test_report_fields(self, small_random_problem):
        report = assess_dynamic(small_random_problem, 50, rng=0)
        assert report.realized_makespans.shape == (50,)
        assert report.mean_makespan == pytest.approx(
            report.realized_makespans.mean()
        )
        assert 0.0 <= report.miss_rate <= 1.0

    def test_reproducible(self, small_random_problem):
        a = assess_dynamic(small_random_problem, 30, rng=5)
        b = assess_dynamic(small_random_problem, 30, rng=5)
        assert np.array_equal(a.realized_makespans, b.realized_makespans)

    def test_rejects_bad_count(self, small_random_problem):
        with pytest.raises(ValueError):
            assess_dynamic(small_random_problem, 0)

    def test_deterministic_problem_no_variance(self, diamond_problem):
        report = assess_dynamic(diamond_problem, 20, rng=1)
        assert np.allclose(report.realized_makespans, report.expected_makespan)
        assert report.miss_rate == 0.0


class TestSimulateSemiDynamic:
    def test_respects_assignment(self, small_random_problem):
        from repro.heuristics.heft import HeftScheduler
        from repro.sim.dynamic import simulate_semi_dynamic

        heft = HeftScheduler().schedule(small_random_problem)
        run = simulate_semi_dynamic(
            small_random_problem, heft.proc_of, heft.expected_durations()
        )
        assert np.array_equal(run.proc_of, heft.proc_of)
        assert np.all(np.isfinite(run.finish_times))

    def test_precedence_and_exclusivity(self, small_random_problem):
        from repro.heuristics.heft import HeftScheduler
        from repro.sim.dynamic import simulate_semi_dynamic

        heft = HeftScheduler().schedule(small_random_problem)
        run = simulate_semi_dynamic(
            small_random_problem, heft.proc_of, heft.expected_durations()
        )
        graph = small_random_problem.graph
        platform = small_random_problem.platform
        for u, v, d in graph.edges():
            arrival = run.finish_times[u] + platform.comm_time(
                d, int(run.proc_of[u]), int(run.proc_of[v])
            )
            assert run.start_times[v] >= arrival - 1e-9
        for p in range(small_random_problem.m):
            tasks = np.flatnonzero(run.proc_of == p)
            order = tasks[np.argsort(run.start_times[tasks])]
            for a, b in zip(order[:-1], order[1:]):
                assert run.start_times[b] >= run.finish_times[a] - 1e-9

    def test_never_much_worse_than_static_in_expectation(self):
        """With expected durations, runtime reordering of a HEFT assignment
        should land near the static HEFT makespan on average."""
        from repro.heuristics.heft import HeftScheduler
        from repro.schedule.evaluation import evaluate
        from repro.sim.dynamic import simulate_semi_dynamic

        ratios = []
        for seed in range(6):
            problem = make_random_problem(400 + seed, n=20, m=3)
            heft = HeftScheduler().schedule(problem)
            static_m = evaluate(heft).makespan
            semi = simulate_semi_dynamic(
                problem, heft.proc_of, heft.expected_durations()
            )
            ratios.append(semi.makespan / static_m)
        assert np.mean(ratios) < 1.3

    def test_validation(self, diamond_problem):
        from repro.sim.dynamic import simulate_semi_dynamic

        with pytest.raises(ValueError, match="proc_of"):
            simulate_semi_dynamic(diamond_problem, np.zeros(3, int), np.ones(4))
        with pytest.raises(ValueError, match="out of range"):
            simulate_semi_dynamic(
                diamond_problem, np.full(4, 9), np.ones(4)
            )
        with pytest.raises(ValueError, match="durations"):
            simulate_semi_dynamic(
                diamond_problem, np.zeros(4, int), np.ones(3)
            )

    def test_deterministic(self, small_random_problem):
        from repro.heuristics.heft import HeftScheduler
        from repro.sim.dynamic import simulate_semi_dynamic

        heft = HeftScheduler().schedule(small_random_problem)
        durs = heft.realize_durations(1, rng=0)[0]
        a = simulate_semi_dynamic(small_random_problem, heft.proc_of, durs)
        b = simulate_semi_dynamic(small_random_problem, heft.proc_of, durs)
        assert a.makespan == b.makespan
