"""Unit tests for robustness metrics (tardiness, miss rate, R1, R2)."""

import numpy as np
import pytest

from repro.robustness.metrics import (
    mean_relative_tardiness,
    miss_rate,
    relative_tardiness,
    robustness_miss_rate,
    robustness_tardiness,
)


class TestRelativeTardiness:
    def test_hand_values(self):
        realized = np.array([90.0, 100.0, 110.0, 150.0])
        delta = relative_tardiness(realized, 100.0)
        assert delta.tolist() == [0.0, 0.0, 0.1, 0.5]

    def test_never_negative(self):
        delta = relative_tardiness(np.array([1.0, 2.0, 3.0]), 100.0)
        assert np.all(delta == 0.0)

    def test_mean(self):
        realized = np.array([100.0, 120.0])
        assert mean_relative_tardiness(realized, 100.0) == pytest.approx(0.1)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            relative_tardiness(np.array([]), 100.0)

    def test_nonpositive_expected_raises(self):
        with pytest.raises(ValueError, match="positive"):
            relative_tardiness(np.array([1.0]), 0.0)


class TestMissRate:
    def test_hand_values(self):
        realized = np.array([90.0, 100.0, 110.0, 150.0])
        # Strictly greater: 100.0 does not miss.
        assert miss_rate(realized, 100.0) == 0.5

    def test_all_hit(self):
        assert miss_rate(np.array([50.0, 99.0]), 100.0) == 0.0

    def test_all_miss(self):
        assert miss_rate(np.array([101.0, 200.0]), 100.0) == 1.0


class TestRobustness:
    def test_r1_hand_value(self):
        realized = np.array([100.0, 120.0])  # mean delta = 0.1
        assert robustness_tardiness(realized, 100.0) == pytest.approx(10.0)

    def test_r1_infinite_when_never_tardy(self):
        assert robustness_tardiness(np.array([90.0, 100.0]), 100.0) == np.inf

    def test_r2_hand_value(self):
        realized = np.array([90.0, 110.0, 120.0, 95.0])
        assert robustness_miss_rate(realized, 100.0) == pytest.approx(2.0)

    def test_r2_infinite_when_never_misses(self):
        assert robustness_miss_rate(np.array([90.0]), 100.0) == np.inf

    def test_higher_variance_lower_r1(self):
        rng = np.random.default_rng(0)
        tight = 100.0 + rng.uniform(-5, 5, 1000)
        wide = 100.0 + rng.uniform(-50, 50, 1000)
        assert robustness_tardiness(tight, 100.0) > robustness_tardiness(wide, 100.0)


class TestRoundingTolerance:
    """Realizations equal to M_0 up to float rounding are not misses.

    The batch kernel and the scalar forward pass sum in different orders,
    so a realization drawn exactly at the expected durations can land a
    few ULPs above M_0.  Regression: that dust used to count as a miss,
    dragging R2 from inf to N on perfectly robust schedules.
    """

    def test_ulp_overrun_is_not_a_miss(self):
        expected = 100.0
        realized = np.full(50, expected * (1.0 + 1e-12))
        assert miss_rate(realized, expected) == 0.0
        assert np.all(relative_tardiness(realized, expected) == 0.0)
        assert robustness_miss_rate(realized, expected) == np.inf
        assert robustness_tardiness(realized, expected) == np.inf

    def test_exact_equality_still_not_a_miss(self):
        realized = np.array([100.0, 100.0])
        assert miss_rate(realized, 100.0) == 0.0

    def test_real_overrun_still_counts(self):
        realized = np.array([100.0 * (1.0 + 1e-6)])
        assert miss_rate(realized, 100.0) == 1.0
        assert relative_tardiness(realized, 100.0)[0] == pytest.approx(
            1e-6, rel=1e-3
        )
