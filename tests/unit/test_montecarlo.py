"""Unit tests for the Monte-Carlo robustness evaluator."""

import numpy as np
import pytest

from repro.robustness.montecarlo import assess_robustness
from repro.schedule.evaluation import evaluate
from repro.schedule.schedule import Schedule


@pytest.fixture
def uncertain_schedule(uncertain_diamond):
    return Schedule(uncertain_diamond, [[0, 1], [2, 3]])


class TestAssessRobustness:
    def test_report_consistency(self, uncertain_schedule):
        report = assess_robustness(uncertain_schedule, 400, rng=0)
        ev = evaluate(uncertain_schedule)
        assert report.expected_makespan == ev.makespan
        assert report.avg_slack == ev.avg_slack
        assert report.n_realizations == 400
        assert report.mean_makespan == pytest.approx(
            report.realized_makespans.mean()
        )

    def test_reproducible(self, uncertain_schedule):
        a = assess_robustness(uncertain_schedule, 100, rng=42)
        b = assess_robustness(uncertain_schedule, 100, rng=42)
        assert np.array_equal(a.realized_makespans, b.realized_makespans)
        assert a.r1 == b.r1

    def test_realized_at_least_bcet_makespan(self, uncertain_schedule):
        report = assess_robustness(uncertain_schedule, 200, rng=1)
        # Realized durations >= BCET, so realized makespans >= BCET makespan.
        bcet = uncertain_schedule.problem.uncertainty.bcet
        durs = bcet[np.arange(4), uncertain_schedule.proc_of]
        lower = evaluate(uncertain_schedule, durs).makespan
        assert np.all(report.realized_makespans >= lower - 1e-9)

    def test_metrics_internally_consistent(self, uncertain_schedule):
        report = assess_robustness(uncertain_schedule, 300, rng=2)
        if report.miss_rate > 0:
            assert report.r2 == pytest.approx(1.0 / report.miss_rate)
        if report.mean_tardiness > 0:
            assert report.r1 == pytest.approx(1.0 / report.mean_tardiness)
        assert 0.0 <= report.miss_rate <= 1.0

    def test_deterministic_problem_perfectly_robust(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        report = assess_robustness(s, 50, rng=3)
        assert report.mean_tardiness == 0.0
        assert report.miss_rate == 0.0
        assert report.r1 == np.inf
        assert report.r2 == np.inf
        assert np.allclose(report.realized_makespans, report.expected_makespan)

    def test_rejects_bad_realization_count(self, uncertain_schedule):
        with pytest.raises(ValueError):
            assess_robustness(uncertain_schedule, 0)

    def test_larger_slack_schedule_is_more_robust(self, uncertain_diamond):
        """The paper's core claim on a micro-instance: more slack => higher R1."""
        tight = Schedule(uncertain_diamond, [[0, 1], [2, 3]])
        # Serializing everything on one processor yields zero comm and a
        # longer expected makespan with different slack structure; instead
        # compare against the same schedule with stretched expectations is
        # not possible, so use the other assignment and just sanity-check
        # ordering between slack and tardiness direction on both.
        packed = Schedule(uncertain_diamond, [[0, 1, 2, 3], []])
        r_tight = assess_robustness(tight, 2000, rng=4)
        r_packed = assess_robustness(packed, 2000, rng=5)
        hi_slack, lo_slack = (
            (r_tight, r_packed)
            if r_tight.avg_slack > r_packed.avg_slack
            else (r_packed, r_tight)
        )
        assert hi_slack.mean_tardiness <= lo_slack.mean_tardiness


class TestArgumentValidation:
    def test_rejects_bad_chunk_size(self, uncertain_schedule):
        with pytest.raises(ValueError, match="chunk_size"):
            assess_robustness(uncertain_schedule, 10, chunk_size=0)

    def test_rejects_negative_realizations(self, uncertain_schedule):
        with pytest.raises(ValueError, match="n_realizations"):
            assess_robustness(uncertain_schedule, -5)
