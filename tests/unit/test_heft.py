"""Unit tests for HEFT, validated against the canonical example of
Topcuoglu, Hariri & Wu (IEEE TPDS 2002) — the paper's ref. [24]."""

import numpy as np
import pytest

from repro.core.problem import SchedulingProblem
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.heft import HeftScheduler, downward_ranks, upward_ranks
from repro.schedule.evaluation import evaluate
from tests.conftest import make_random_problem


@pytest.fixture
def topcuoglu_problem() -> SchedulingProblem:
    """The 10-task, 3-processor worked example from the HEFT paper.

    Published upward ranks: v1=108.000, v2=77.000, v3=80.000, v4=80.000,
    v5=69.000, v6=63.333, v7=42.667, v8=35.667, v9=44.333, v10=14.667.
    Published HEFT makespan: 80.
    """
    # Tasks renumbered 0-based (paper's v1 -> 0, ...).
    edges = {
        (0, 1): 18.0,
        (0, 2): 12.0,
        (0, 3): 9.0,
        (0, 4): 11.0,
        (0, 5): 14.0,
        (1, 7): 19.0,
        (1, 8): 16.0,
        (2, 6): 23.0,
        (3, 7): 27.0,
        (3, 8): 23.0,
        (4, 8): 13.0,
        (5, 7): 15.0,
        (6, 9): 17.0,
        (7, 9): 11.0,
        (8, 9): 13.0,
    }
    graph = TaskGraph(10, list(edges), list(edges.values()), name="topcuoglu")
    times = np.array(
        [
            [14.0, 16.0, 9.0],
            [13.0, 19.0, 18.0],
            [11.0, 13.0, 19.0],
            [13.0, 8.0, 17.0],
            [12.0, 13.0, 10.0],
            [13.0, 16.0, 9.0],
            [7.0, 15.0, 11.0],
            [5.0, 11.0, 14.0],
            [18.0, 12.0, 20.0],
            [21.0, 7.0, 16.0],
        ]
    )
    return SchedulingProblem.deterministic(graph, times, name="topcuoglu")


class TestUpwardRanks:
    def test_published_values(self, topcuoglu_problem):
        ranks = upward_ranks(topcuoglu_problem)
        published = [
            108.000,
            77.000,
            80.000,
            80.000,
            69.000,
            63.333,
            42.667,
            35.667,
            44.333,
            14.667,
        ]
        assert np.allclose(ranks, published, atol=0.01)

    def test_exit_rank_is_average_time(self, topcuoglu_problem):
        ranks = upward_ranks(topcuoglu_problem)
        assert np.isclose(ranks[9], (21 + 7 + 16) / 3)

    def test_monotone_along_edges(self, small_random_problem):
        ranks = upward_ranks(small_random_problem)
        g = small_random_problem.graph
        for u, v, _ in g.edges():
            assert ranks[u] > ranks[v]


class TestDownwardRanks:
    def test_entry_is_zero(self, topcuoglu_problem):
        ranks = downward_ranks(topcuoglu_problem)
        assert ranks[0] == 0.0

    def test_monotone_along_edges(self, small_random_problem):
        ranks = downward_ranks(small_random_problem)
        g = small_random_problem.graph
        for u, v, _ in g.edges():
            assert ranks[v] > ranks[u]

    def test_hand_value(self, topcuoglu_problem):
        # rank_d(v2) = rank_d(v1) + w1_avg + c(1,2) = 0 + 13 + 18 = 31.
        ranks = downward_ranks(topcuoglu_problem)
        assert np.isclose(ranks[1], 31.0)


class TestHeftSchedule:
    def test_published_makespan(self, topcuoglu_problem):
        schedule = HeftScheduler().schedule(topcuoglu_problem)
        assert np.isclose(evaluate(schedule).makespan, 80.0)

    def test_deterministic(self, small_random_problem):
        a = HeftScheduler().schedule(small_random_problem)
        b = HeftScheduler().schedule(small_random_problem)
        assert a == b

    def test_beats_random_on_average(self):
        from repro.heuristics.random_sched import random_schedule

        wins = 0
        for seed in range(10):
            problem = make_random_problem(seed, n=20, m=3)
            heft_m = evaluate(HeftScheduler().schedule(problem)).makespan
            rand_m = evaluate(random_schedule(problem, seed)).makespan
            wins += heft_m <= rand_m
        assert wins >= 9

    def test_single_processor(self, diamond_problem):
        import dataclasses

        from repro.platform.platform import Platform
        from repro.platform.uncertainty import UncertaintyModel

        problem = SchedulingProblem(
            graph=diamond_problem.graph,
            platform=Platform(1),
            uncertainty=UncertaintyModel.deterministic(
                diamond_problem.expected_times[:, :1]
            ),
        )
        schedule = HeftScheduler().schedule(problem)
        # One processor: makespan is the serial sum.
        assert evaluate(schedule).makespan == 2 + 4 + 6 + 3

    def test_single_task(self, single_task_problem):
        schedule = HeftScheduler().schedule(single_task_problem)
        # Picks the faster processor (7 < 9).
        assert evaluate(schedule).makespan == 7.0

    def test_insertion_fills_gaps(self):
        """A low-priority independent task should slot into an idle gap."""
        # Chain 0->1 with heavy comm forces a gap on the chain's processor
        # if 1 runs elsewhere; here all on one proc keeps it simple: the
        # independent task 2 must not extend the makespan when it fits.
        graph = TaskGraph(3, [(0, 1)], [100.0], name="gap")
        times = np.array([[2.0, 50.0], [2.0, 50.0], [3.0, 3.0]])
        problem = SchedulingProblem.deterministic(graph, times)
        schedule = HeftScheduler().schedule(problem)
        ev = evaluate(schedule)
        # 0 and 1 run back-to-back on p0 (0-2, 2-4); 2 fits anywhere.
        assert ev.makespan <= 7.0
