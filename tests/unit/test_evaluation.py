"""Unit tests for schedule evaluation (makespan, levels, slack)."""

import numpy as np
import pytest

from repro.schedule.evaluation import (
    batch_makespans,
    evaluate,
    expected_makespan,
    task_slacks,
)
from repro.schedule.schedule import Schedule


@pytest.fixture
def two_proc_schedule(diamond_problem):
    """Hand-computed: P0=[0,1], P1=[2,3]; makespan 29 (see docstring math).

    Durations (2, 4, 4, 3); comm: (0,2)=20, (1,3)=10, rest intra-proc.
    Tl = (0, 2, 22, 26); Bl = (29, 17, 7, 3); slacks = (0, 10, 0, 0).
    """
    return Schedule(diamond_problem, [[0, 1], [2, 3]])


@pytest.fixture
def packed_schedule(diamond_problem):
    """P0=[0], P1=[1,2,3] with a real disjunctive chain edge (1,2).

    Makespan 29; slacks (0, 5, 0, 0).
    """
    return Schedule(diamond_problem, [[0], [1, 2, 3]])


class TestEvaluateHandComputed:
    def test_makespan(self, two_proc_schedule):
        assert evaluate(two_proc_schedule).makespan == 29.0

    def test_levels(self, two_proc_schedule):
        ev = evaluate(two_proc_schedule)
        assert ev.top_levels.tolist() == [0.0, 2.0, 22.0, 26.0]
        assert ev.bottom_levels.tolist() == [29.0, 17.0, 7.0, 3.0]

    def test_start_finish_times(self, two_proc_schedule):
        ev = evaluate(two_proc_schedule)
        assert ev.start_times.tolist() == [0.0, 2.0, 22.0, 26.0]
        assert ev.finish_times.tolist() == [2.0, 6.0, 26.0, 29.0]

    def test_slacks(self, two_proc_schedule):
        ev = evaluate(two_proc_schedule)
        assert ev.slacks.tolist() == [0.0, 10.0, 0.0, 0.0]
        assert ev.avg_slack == 2.5

    def test_critical_tasks(self, two_proc_schedule):
        assert evaluate(two_proc_schedule).critical_tasks.tolist() == [0, 2, 3]

    def test_packed_schedule(self, packed_schedule):
        ev = evaluate(packed_schedule)
        assert ev.makespan == 29.0
        assert ev.slacks.tolist() == [0.0, 5.0, 0.0, 0.0]

    def test_convenience_wrappers(self, two_proc_schedule):
        assert expected_makespan(two_proc_schedule) == 29.0
        assert task_slacks(two_proc_schedule).tolist() == [0.0, 10.0, 0.0, 0.0]


class TestEvaluateCustomDurations:
    def test_custom_durations(self, two_proc_schedule):
        # Stretch task 1 by its full slack of 10: makespan unchanged.
        ev = evaluate(two_proc_schedule, np.array([2.0, 14.0, 4.0, 3.0]))
        assert ev.makespan == 29.0

    def test_exceeding_slack_extends(self, two_proc_schedule):
        ev = evaluate(two_proc_schedule, np.array([2.0, 15.0, 4.0, 3.0]))
        assert ev.makespan == 30.0

    def test_rejects_wrong_shape(self, two_proc_schedule):
        with pytest.raises(ValueError, match="shape"):
            evaluate(two_proc_schedule, np.array([1.0, 2.0]))

    def test_rejects_negative(self, two_proc_schedule):
        with pytest.raises(ValueError, match="non-negative"):
            evaluate(two_proc_schedule, np.array([1.0, -2.0, 3.0, 4.0]))

    def test_rejects_nan(self, two_proc_schedule):
        with pytest.raises(ValueError, match="finite"):
            evaluate(two_proc_schedule, np.array([1.0, np.nan, 3.0, 4.0]))


class TestCaching:
    def test_expected_eval_cached(self, two_proc_schedule):
        a = evaluate(two_proc_schedule)
        b = evaluate(two_proc_schedule)
        assert a is b

    def test_custom_durations_not_cached(self, two_proc_schedule):
        a = evaluate(two_proc_schedule, np.array([2.0, 4.0, 4.0, 3.0]))
        b = evaluate(two_proc_schedule)
        assert a is not b
        assert a.makespan == b.makespan


class TestBatchMakespans:
    def test_matches_sequential(self, two_proc_schedule):
        rng = np.random.default_rng(5)
        durs = rng.uniform(1, 10, size=(32, 4))
        batched = batch_makespans(two_proc_schedule, durs)
        singles = np.array([evaluate(two_proc_schedule, d).makespan for d in durs])
        assert np.allclose(batched, singles)

    def test_expected_row_matches_m0(self, two_proc_schedule):
        durs = two_proc_schedule.expected_durations()[None, :]
        assert batch_makespans(two_proc_schedule, durs)[0] == 29.0

    def test_rejects_1d(self, two_proc_schedule):
        with pytest.raises(ValueError, match="shape"):
            batch_makespans(two_proc_schedule, np.ones(4))

    def test_rejects_negative(self, two_proc_schedule):
        with pytest.raises(ValueError, match="non-negative"):
            batch_makespans(two_proc_schedule, -np.ones((2, 4)))

    def test_monotone_in_durations(self, two_proc_schedule):
        base = np.tile(two_proc_schedule.expected_durations(), (4, 1))
        bumped = base.copy()
        bumped[:, 2] += 5.0  # critical task
        assert np.all(
            batch_makespans(two_proc_schedule, bumped)
            >= batch_makespans(two_proc_schedule, base)
        )


class TestSingleTask:
    def test_trivial_schedule(self, single_task_problem):
        s = Schedule(single_task_problem, [[0], []])
        ev = evaluate(s)
        assert ev.makespan == 7.0
        assert ev.slacks.tolist() == [0.0]
        assert ev.avg_slack == 0.0

    def test_other_processor(self, single_task_problem):
        s = Schedule(single_task_problem, [[], [0]])
        assert evaluate(s).makespan == 9.0
