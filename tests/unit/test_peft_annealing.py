"""Unit tests for the PEFT and simulated-annealing schedulers."""

import numpy as np
import pytest

from repro.heuristics.annealing import AnnealingParams, AnnealingScheduler
from repro.heuristics.heft import HeftScheduler
from repro.heuristics.peft import PeftScheduler, optimistic_cost_table
from repro.heuristics.random_sched import random_schedule
from repro.schedule.evaluation import evaluate, expected_makespan
from tests.conftest import make_random_problem


class TestOptimisticCostTable:
    def test_exit_rows_zero(self, small_random_problem):
        oct_table = optimistic_cost_table(small_random_problem)
        for v in small_random_problem.graph.exit_nodes:
            assert np.all(oct_table[int(v)] == 0.0)

    def test_nonnegative_everywhere(self, small_random_problem):
        assert np.all(optimistic_cost_table(small_random_problem) >= 0.0)

    def test_hand_computed_chain(self, chain_problem):
        # Chain 0 -> 1 -> 2 on 2 procs; times [[2,4],[3,1],[2,2]], data 5,
        # unit rates so avg comm = 5 between distinct procs.
        oct_table = optimistic_cost_table(chain_problem)
        # OCT(2, *) = 0. OCT(1, p) = min_q(w(2,q) + [p!=q]*5) = 2.
        assert oct_table[2].tolist() == [0.0, 0.0]
        assert oct_table[1].tolist() == [2.0, 2.0]
        # OCT(0, p) = min_q(OCT(1,q) + w(1,q) + [p!=q]*5)
        #  p=0: min(2+3, 2+1+5) = 5 ; p=1: min(2+3+5, 2+1) = 3.
        assert oct_table[0].tolist() == [5.0, 3.0]

    def test_monotone_toward_exits(self, small_random_problem):
        """Average OCT decreases along edges (it is remaining work)."""
        oct_table = optimistic_cost_table(small_random_problem)
        rank = oct_table.mean(axis=1)
        for u, v, _ in small_random_problem.graph.edges():
            assert rank[u] > rank[v] - 1e-9


class TestPeftScheduler:
    def test_valid_schedule(self, small_random_problem):
        s = PeftScheduler().schedule(small_random_problem)
        assert evaluate(s).makespan > 0

    def test_deterministic(self, small_random_problem):
        assert PeftScheduler().schedule(small_random_problem) == PeftScheduler().schedule(
            small_random_problem
        )

    def test_competitive_with_heft(self):
        """PEFT should be in HEFT's ballpark (within 50%) on average cases."""
        ratios = []
        for seed in range(8):
            problem = make_random_problem(seed, n=25, m=3)
            peft_m = expected_makespan(PeftScheduler().schedule(problem))
            heft_m = expected_makespan(HeftScheduler().schedule(problem))
            ratios.append(peft_m / heft_m)
        assert np.mean(ratios) < 1.5

    def test_single_task(self, single_task_problem):
        s = PeftScheduler().schedule(single_task_problem)
        assert evaluate(s).makespan == 7.0


class TestAnnealingScheduler:
    def test_rejects_bad_objective(self):
        with pytest.raises(ValueError, match="objective"):
            AnnealingScheduler("fitness")

    def test_eps_requires_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            AnnealingScheduler("eps-slack")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"iterations": 0},
            {"initial_temp": 0.0},
            {"cooling": 1.5},
            {"restarts": 0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            AnnealingParams(**kwargs)

    def test_makespan_annealing_beats_random(self, small_random_problem):
        params = AnnealingParams(iterations=400, seed_heft=False)
        sa = AnnealingScheduler("makespan", params=params, rng=0)
        s = sa.schedule(small_random_problem)
        rand_m = np.mean(
            [
                evaluate(random_schedule(small_random_problem, i)).makespan
                for i in range(10)
            ]
        )
        assert evaluate(s).makespan < rand_m

    def test_heft_seeded_never_worse_than_heft(self, small_random_problem):
        params = AnnealingParams(iterations=200, seed_heft=True)
        sa = AnnealingScheduler("makespan", params=params, rng=1)
        s = sa.schedule(small_random_problem)
        heft_m = expected_makespan(HeftScheduler().schedule(small_random_problem))
        assert evaluate(s).makespan <= heft_m + 1e-9

    def test_slack_objective_increases_slack(self, small_random_problem):
        params = AnnealingParams(iterations=400, seed_heft=False)
        best, energy = AnnealingScheduler("slack", params=params, rng=2).run(
            small_random_problem
        )
        start_slack = evaluate(
            random_schedule(small_random_problem, 0)
        ).avg_slack
        assert -energy > 0  # energy is -slack
        # The annealer should exceed a typical random schedule's slack.
        assert -energy >= start_slack * 0.5

    def test_eps_slack_respects_bound(self, small_random_problem):
        params = AnnealingParams(iterations=400, seed_heft=True)
        sa = AnnealingScheduler("eps-slack", epsilon=1.0, params=params, rng=3)
        s = sa.schedule(small_random_problem)
        heft_m = expected_makespan(HeftScheduler().schedule(small_random_problem))
        assert evaluate(s).makespan <= heft_m * (1 + 1e-9)

    def test_reproducible(self, small_random_problem):
        params = AnnealingParams(iterations=100)
        a, ea = AnnealingScheduler("makespan", params=params, rng=7).run(
            small_random_problem
        )
        b, eb = AnnealingScheduler("makespan", params=params, rng=7).run(
            small_random_problem
        )
        assert ea == eb
        assert a.key() == b.key()

    def test_restarts_help_or_tie(self, small_random_problem):
        one = AnnealingScheduler(
            "makespan", params=AnnealingParams(iterations=100, restarts=1), rng=9
        ).run(small_random_problem)[1]
        many = AnnealingScheduler(
            "makespan", params=AnnealingParams(iterations=100, restarts=3), rng=9
        ).run(small_random_problem)[1]
        assert many <= one + 1e-9
