"""Unit tests for Pareto utilities."""

import numpy as np
import pytest

from repro.moop.pareto import (
    crowding_distance,
    dominates,
    non_dominated_sort,
    pareto_front_mask,
)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])
        assert dominates([1.0, 2.0], [2.0, 2.0])

    def test_no_self_dominance(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_incomparable(self):
        assert not dominates([1.0, 3.0], [2.0, 2.0])
        assert not dominates([2.0, 2.0], [1.0, 3.0])


class TestParetoFrontMask:
    def test_simple_front(self):
        pts = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0], [3.0, 3.0]])
        assert pareto_front_mask(pts).tolist() == [True, True, True, False]

    def test_duplicates_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert pareto_front_mask(pts).tolist() == [True, True, False]

    def test_single_point(self):
        assert pareto_front_mask(np.array([[5.0, 5.0]])).tolist() == [True]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pareto_front_mask(np.array([1.0, 2.0]))

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            pareto_front_mask(np.array([[np.inf, 1.0]]))


class TestNonDominatedSort:
    def test_layered_fronts(self):
        pts = np.array(
            [
                [1.0, 3.0],  # front 0
                [3.0, 1.0],  # front 0
                [2.0, 4.0],  # front 1 (dominated by [1,3])
                [4.0, 2.0],  # front 1
                [5.0, 5.0],  # front 2
            ]
        )
        fronts = non_dominated_sort(pts)
        assert [sorted(f.tolist()) for f in fronts] == [[0, 1], [2, 3], [4]]

    def test_all_nondominated(self):
        pts = np.array([[1.0, 4.0], [2.0, 3.0], [3.0, 2.0], [4.0, 1.0]])
        fronts = non_dominated_sort(pts)
        assert len(fronts) == 1
        assert sorted(fronts[0].tolist()) == [0, 1, 2, 3]

    def test_total_order_chain(self):
        pts = np.array([[3.0, 3.0], [1.0, 1.0], [2.0, 2.0]])
        fronts = non_dominated_sort(pts)
        assert [f.tolist() for f in fronts] == [[1], [2], [0]]

    def test_empty(self):
        assert non_dominated_sort(np.empty((0, 2))) == []

    def test_partition_property(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, (40, 3))
        fronts = non_dominated_sort(pts)
        ids = sorted(i for f in fronts for i in f.tolist())
        assert ids == list(range(40))
        # First front matches the mask computation.
        mask = pareto_front_mask(pts)
        assert sorted(fronts[0].tolist()) == sorted(np.flatnonzero(mask).tolist())


class TestCrowdingDistance:
    def test_boundaries_infinite(self):
        pts = np.array([[1.0, 4.0], [2.0, 3.0], [3.0, 2.0], [4.0, 1.0]])
        cd = crowding_distance(pts)
        assert cd[0] == np.inf
        assert cd[3] == np.inf
        assert np.isfinite(cd[1]) and np.isfinite(cd[2])

    def test_two_points_infinite(self):
        cd = crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))
        assert np.all(np.isinf(cd))

    def test_isolated_point_has_larger_distance(self):
        # Middle points: one crowded, one isolated.
        pts = np.array([[0.0, 10.0], [1.0, 9.0], [1.5, 8.5], [10.0, 0.0]])
        cd = crowding_distance(pts)
        assert cd[2] > 0  # both finite
        # Point 1's neighbours straddle a wider gap than point 2's.

    def test_degenerate_objective_ignored(self):
        pts = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        cd = crowding_distance(pts)
        assert cd[0] == np.inf and cd[2] == np.inf
        assert np.isfinite(cd[1])
