"""Unit tests for GA chromosomes (encoding, decoding, seeding)."""

import numpy as np
import pytest

from repro.ga.chromosome import Chromosome, heft_chromosome, random_chromosome
from repro.graph.topology import is_topological_order
from repro.heuristics.heft import HeftScheduler
from repro.schedule.evaluation import evaluate


class TestChromosome:
    def test_construction(self):
        c = Chromosome(order=np.array([0, 1, 2]), proc_of=np.array([0, 1, 0]))
        assert c.n == 3
        with pytest.raises(ValueError):
            c.order[0] = 5  # immutable

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError, match="equal length"):
            Chromosome(order=np.array([0, 1, 2]), proc_of=np.array([0, 1]))

    def test_key_uniqueness(self):
        a = Chromosome(np.array([0, 1]), np.array([0, 0]))
        b = Chromosome(np.array([0, 1]), np.array([0, 0]))
        c = Chromosome(np.array([0, 1]), np.array([0, 1]))
        d = Chromosome(np.array([1, 0]), np.array([0, 0]))
        assert a.key() == b.key()
        assert a.key() != c.key()
        assert a.key() != d.key()

    def test_validate_accepts_legal(self, diamond_problem):
        c = Chromosome(np.array([0, 2, 1, 3]), np.array([0, 1, 1, 0]))
        c.validate(diamond_problem)

    def test_validate_rejects_bad_order(self, diamond_problem):
        c = Chromosome(np.array([1, 0, 2, 3]), np.array([0, 0, 0, 0]))
        with pytest.raises(ValueError, match="topological"):
            c.validate(diamond_problem)

    def test_validate_rejects_bad_proc(self, diamond_problem):
        c = Chromosome(np.array([0, 1, 2, 3]), np.array([0, 0, 0, 9]))
        with pytest.raises(ValueError, match="out of range"):
            c.validate(diamond_problem)

    def test_validate_rejects_wrong_size(self, diamond_problem):
        c = Chromosome(np.array([0, 1]), np.array([0, 0]))
        with pytest.raises(ValueError, match="4"):
            c.validate(diamond_problem)

    def test_decode(self, diamond_problem):
        c = Chromosome(np.array([0, 2, 1, 3]), np.array([0, 1, 1, 1]))
        s = c.decode(diamond_problem)
        assert s.proc_orders[0].tolist() == [0]
        assert s.proc_orders[1].tolist() == [2, 1, 3]

    def test_assignment_strings(self, diamond_problem):
        c = Chromosome(np.array([0, 2, 1, 3]), np.array([0, 1, 1, 1]))
        strings = c.assignment_strings(2)
        assert strings[0].tolist() == [0]
        assert strings[1].tolist() == [2, 1, 3]


class TestRandomChromosome:
    def test_valid(self, small_random_problem):
        rng = np.random.default_rng(0)
        for _ in range(20):
            c = random_chromosome(small_random_problem, rng)
            c.validate(small_random_problem)

    def test_decodes_to_valid_schedule(self, small_random_problem):
        c = random_chromosome(small_random_problem, 7)
        s = c.decode(small_random_problem)
        assert evaluate(s).makespan > 0


class TestHeftChromosome:
    def test_roundtrip_preserves_schedule(self, small_random_problem):
        heft = HeftScheduler().schedule(small_random_problem)
        c = heft_chromosome(small_random_problem, heft)
        decoded = c.decode(small_random_problem)
        assert decoded == heft
        assert evaluate(decoded).makespan == evaluate(heft).makespan

    def test_order_is_topological(self, small_random_problem):
        c = heft_chromosome(small_random_problem)
        assert is_topological_order(small_random_problem.graph, c.order)

    def test_computes_heft_if_not_given(self, small_random_problem):
        c = heft_chromosome(small_random_problem)
        heft = HeftScheduler().schedule(small_random_problem)
        assert c.decode(small_random_problem) == heft
