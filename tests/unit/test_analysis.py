"""Unit tests for :mod:`repro.graph.analysis` (ArrayDag and helpers)."""

import numpy as np
import pytest

from repro.graph.analysis import (
    ArrayDag,
    critical_path,
    critical_path_length,
    dag_levels,
)
from repro.graph.taskgraph import TaskGraph


@pytest.fixture
def diamond_dag(diamond_graph):
    return ArrayDag.from_taskgraph(diamond_graph)


class TestArrayDagBuild:
    def test_topo_order_valid(self, diamond_dag):
        pos = {int(v): i for i, v in enumerate(diamond_dag.topo)}
        for u, v in zip(diamond_dag.edge_src, diamond_dag.edge_dst):
            assert pos[int(u)] < pos[int(v)]

    def test_cycle_detection(self):
        with pytest.raises(ValueError, match="cycle"):
            ArrayDag.build(3, np.array([0, 1, 2]), np.array([1, 2, 0]))

    def test_mismatched_edge_arrays(self):
        with pytest.raises(ValueError, match="same length"):
            ArrayDag.build(3, np.array([0, 1]), np.array([1]))

    def test_pred_succ_edges(self, diamond_dag):
        # Edges in canonical order: (0,1), (0,2), (1,3), (2,3).
        assert sorted(diamond_dag.succ_edges(0).tolist()) == [0, 1]
        assert sorted(diamond_dag.pred_edges(3).tolist()) == [2, 3]
        assert diamond_dag.pred_edges(0).size == 0
        assert diamond_dag.succ_edges(3).size == 0


class TestLevels:
    def test_top_levels_hand_computed(self, diamond_dag):
        # Node weights w, edge weights c: Tl excludes the node itself.
        w = np.array([2.0, 4.0, 4.0, 3.0])
        c = np.array([0.0, 20.0, 10.0, 0.0])  # edges (0,1),(0,2),(1,3),(2,3)
        tl = diamond_dag.top_levels(w, c)
        assert tl.tolist() == [0.0, 2.0, 22.0, 26.0]

    def test_bottom_levels_hand_computed(self, diamond_dag):
        w = np.array([2.0, 4.0, 4.0, 3.0])
        c = np.array([0.0, 20.0, 10.0, 0.0])
        bl = diamond_dag.bottom_levels(w, c)
        assert bl.tolist() == [29.0, 17.0, 7.0, 3.0]

    def test_makespan_scalar(self, diamond_dag):
        w = np.array([2.0, 4.0, 4.0, 3.0])
        c = np.array([0.0, 20.0, 10.0, 0.0])
        assert diamond_dag.makespan(w, c) == 29.0

    def test_makespan_no_edge_weights(self, diamond_dag):
        w = np.array([1.0, 1.0, 1.0, 1.0])
        assert diamond_dag.makespan(w) == 3.0

    def test_batched_matches_sequential(self, diamond_dag):
        rng = np.random.default_rng(7)
        batch = rng.uniform(1.0, 5.0, size=(16, 4))
        c = np.array([0.0, 20.0, 10.0, 0.0])
        batched = diamond_dag.makespan(batch, c)
        singles = np.array([diamond_dag.makespan(batch[i], c) for i in range(16)])
        assert np.allclose(batched, singles)

    def test_batched_levels_shape(self, diamond_dag):
        batch = np.ones((5, 4))
        assert diamond_dag.top_levels(batch).shape == (5, 4)
        assert diamond_dag.bottom_levels(batch).shape == (5, 4)

    def test_wrong_node_weight_shape_raises(self, diamond_dag):
        with pytest.raises(ValueError, match="last axis"):
            diamond_dag.top_levels(np.ones(3))

    def test_wrong_edge_weight_shape_raises(self, diamond_dag):
        with pytest.raises(ValueError, match="edge weights"):
            diamond_dag.top_levels(np.ones(4), np.ones(2))

    def test_tl_plus_bl_bounded_by_makespan(self, diamond_dag):
        rng = np.random.default_rng(3)
        w = rng.uniform(1, 10, 4)
        c = rng.uniform(0, 5, 4)
        tl = diamond_dag.top_levels(w, c)
        bl = diamond_dag.bottom_levels(w, c)
        m = diamond_dag.makespan(w, c)
        assert np.all(tl + bl <= m + 1e-9)
        # Some node is critical.
        assert np.isclose((tl + bl).max(), m)


class TestCriticalPath:
    def test_path_hand_computed(self, diamond_graph):
        w = np.array([2.0, 4.0, 4.0, 3.0])
        c = np.array([0.0, 20.0, 10.0, 0.0])
        assert critical_path(diamond_graph, w, c) == [0, 2, 3]
        assert critical_path_length(diamond_graph, w, c) == 29.0

    def test_path_is_connected(self, diamond_graph):
        path = critical_path(diamond_graph, np.ones(4))
        for a, b in zip(path[:-1], path[1:]):
            assert diamond_graph.has_edge(a, b)

    def test_single_node(self):
        g = TaskGraph(1)
        assert critical_path(g, np.array([5.0])) == [0]
        assert critical_path_length(g, np.array([5.0])) == 5.0

    def test_batched_weights_rejected(self, diamond_dag):
        with pytest.raises(ValueError, match="1-D"):
            diamond_dag.critical_path(np.ones((2, 4)))

    def test_path_length_equals_sum_along_path(self, diamond_graph):
        rng = np.random.default_rng(11)
        w = rng.uniform(1, 10, 4)
        c = rng.uniform(0, 5, 4)
        path = critical_path(diamond_graph, w, c)
        length = sum(w[v] for v in path)
        edges = list(diamond_graph.edges())
        srcs = diamond_graph.edge_src.tolist()
        dsts = diamond_graph.edge_dst.tolist()
        for a, b in zip(path[:-1], path[1:]):
            e = next(i for i in range(len(edges)) if srcs[i] == a and dsts[i] == b)
            length += c[e]
        assert np.isclose(length, critical_path_length(diamond_graph, w, c))


class TestDagLevels:
    def test_diamond(self, diamond_graph):
        assert dag_levels(diamond_graph).tolist() == [0, 1, 1, 2]

    def test_chain(self):
        g = TaskGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert dag_levels(g).tolist() == [0, 1, 2, 3]

    def test_independent(self):
        g = TaskGraph(3)
        assert dag_levels(g).tolist() == [0, 0, 0]

    def test_skip_edge_takes_longest(self):
        g = TaskGraph(4, [(0, 1), (1, 3), (0, 3), (0, 2)])
        assert dag_levels(g).tolist() == [0, 1, 1, 2]
