"""Unit tests for :mod:`repro.utils` (rng, validation, stats, tables)."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.stats import geometric_mean, log_ratio, summarize
from repro.utils.tables import format_series, format_table
from repro.utils.validation import (
    check_matrix,
    check_positive,
    check_probability,
    check_square,
)


class TestRng:
    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_from_seed(self):
        a = as_generator(42).random()
        b = as_generator(42).random()
        assert a == b

    def test_spawn_seeds_deterministic(self):
        a = spawn_seeds(1, 3)
        b = spawn_seeds(1, 3)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert len(a) == 3

    def test_spawn_seeds_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_spawn_generators_independent(self):
        gens = spawn_generators(7, 2)
        x = gens[0].random(5)
        y = gens[1].random(5)
        assert not np.allclose(x, y)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(0)
        children = spawn_generators(parent, 2)
        assert len(children) == 2


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.5) == 2.5
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        assert check_probability("p", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_probability("p", 1.01)

    def test_check_matrix(self):
        m = check_matrix("m", [[1, 2], [3, 4]])
        assert m.dtype == np.float64
        with pytest.raises(ValueError, match="2-D"):
            check_matrix("m", [1, 2, 3])
        with pytest.raises(ValueError, match="shape"):
            check_matrix("m", [[1, 2]], shape=(2, 2))
        with pytest.raises(ValueError, match="non-finite"):
            check_matrix("m", [[np.nan]])
        with pytest.raises(ValueError, match="positive"):
            check_matrix("m", [[0.0]], positive=True)
        with pytest.raises(ValueError, match="non-negative"):
            check_matrix("m", [[-1.0]], nonnegative=True)

    def test_check_square(self):
        check_square("m", np.eye(3))
        with pytest.raises(ValueError, match="square"):
            check_square("m", np.ones((2, 3)))
        with pytest.raises(ValueError, match="3x3"):
            check_square("m", np.eye(2), 3)


class TestStats:
    def test_log_ratio_scalar(self):
        assert log_ratio(np.e, 1.0) == pytest.approx(1.0)
        assert isinstance(log_ratio(2.0, 1.0), float)

    def test_log_ratio_array(self):
        out = log_ratio(np.array([1.0, np.e]), 1.0)
        assert np.allclose(out, [0.0, 1.0])

    def test_log_ratio_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_ratio(0.0, 1.0)
        with pytest.raises(ValueError):
            log_ratio(1.0, -2.0)

    def test_geometric_mean(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean(np.array([]))
        with pytest.raises(ValueError):
            geometric_mean(np.array([1.0, 0.0]))

    def test_summarize(self):
        s = summarize(np.array([1.0, 2.0, 3.0]))
        assert s.n == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        with pytest.raises(ValueError):
            summarize(np.array([]))


class TestTables:
    def test_format_table_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, sep, 2 rows
        assert "bb" in lines[0]
        assert "2.5" in lines[2]

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError, match="headers"):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        out = format_series("x", [1, 2], {"y": [0.1, 0.2], "z": [3.0, 4.0]})
        assert "x" in out and "y" in out and "z" in out
        assert len(out.splitlines()) == 4

    def test_format_series_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            format_series("x", [1, 2], {"y": [0.1]})

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out
