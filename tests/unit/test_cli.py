"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, run


class TestParser:
    def test_all_figures_registered(self):
        parser = build_parser()
        for fig in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            args = parser.parse_args([fig, "--scale", "smoke"])
            assert args.command == fig
            assert args.scale == "smoke"

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.tasks == 50
        assert args.epsilon == 1.0

    def test_uls_parsing(self):
        args = build_parser().parse_args(["fig4", "--uls", "2", "4.5"])
        assert args.uls == [2.0, 4.5]

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--scale", "enormous"])

    def test_submit_warm_start_flag(self):
        parser = build_parser()
        assert parser.parse_args(["submit"]).warm_start is True
        assert parser.parse_args(["submit", "--warm-start"]).warm_start is True
        assert parser.parse_args(["submit", "--no-warm-start"]).warm_start is False


class TestRun:
    def test_solve_output(self):
        out = run(["solve", "--tasks", "10", "--seed", "3", "--realizations", "50"])
        assert "HEFT" in out
        assert "robust GA" in out
        assert "R1" in out

    def test_solve_epsilon_affects_output(self):
        tight = run(["solve", "--tasks", "10", "--seed", "3", "--realizations", "50"])
        loose = run(
            [
                "solve",
                "--tasks",
                "10",
                "--seed",
                "3",
                "--realizations",
                "50",
                "--epsilon",
                "2.0",
            ]
        )
        assert tight != loose
