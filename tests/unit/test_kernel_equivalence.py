"""Equivalence of the level-synchronous kernels with the reference passes.

The rewrite keeps the original per-node numpy passes as
``top_levels_reference`` / ``bottom_levels_reference``; this suite pins the
level-synchronous scalar path, the batched numpy path, and the optional C
kernel to them *bit-for-bit* across the shapes the ISSUE calls out: random
DAGs, edgeless graphs, ``n = 1``, chains, and batch widths
``R in {0, 1, 1000}``.  It also checks that the vectorized
``Schedule.__init__`` validation rejects the same invalid inputs with the
same error messages as the original per-element scan.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.graph.analysis import ArrayDag
from repro.heuristics.heft import HeftScheduler
from repro.schedule.evaluation import batch_makespans
from repro.schedule.schedule import Schedule

from tests.conftest import make_random_problem


def random_dag(rng: np.random.Generator, n: int) -> ArrayDag:
    """A random DAG: each pair (u < v) is an edge with probability ~0.25."""
    src, dst = [], []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.25:
                src.append(u)
                dst.append(v)
    return ArrayDag.build(
        n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)
    )


def dag_cases() -> list[tuple[str, ArrayDag]]:
    rng = np.random.default_rng(7)
    cases = [
        ("edgeless", ArrayDag.build(5, np.empty(0, np.int64), np.empty(0, np.int64))),
        ("single", ArrayDag.build(1, np.empty(0, np.int64), np.empty(0, np.int64))),
        (
            "chain",
            ArrayDag.build(
                6, np.arange(5, dtype=np.int64), np.arange(1, 6, dtype=np.int64)
            ),
        ),
    ]
    for i in range(4):
        cases.append((f"random{i}", random_dag(rng, 12 + 5 * i)))
    return cases


CASES = dag_cases()


def weights_for(dag: ArrayDag, rng: np.random.Generator):
    node_w = rng.uniform(0.5, 10.0, size=dag.n)
    edge_w = rng.uniform(0.0, 5.0, size=dag.edge_src.shape[0])
    return node_w, edge_w


@pytest.mark.parametrize("name,dag", CASES, ids=[c[0] for c in CASES])
class TestScalarAgainstReference:
    """1-D scalar passes vs the per-node reference — exact equality."""

    def test_top_levels(self, name, dag):
        node_w, edge_w = weights_for(dag, np.random.default_rng(1))
        got = dag.top_levels(node_w, edge_w)
        want = dag.top_levels_reference(node_w, edge_w)
        assert np.array_equal(got, want)

    def test_bottom_levels(self, name, dag):
        node_w, edge_w = weights_for(dag, np.random.default_rng(2))
        got = dag.bottom_levels(node_w, edge_w)
        want = dag.bottom_levels_reference(node_w, edge_w)
        assert np.array_equal(got, want)

    def test_makespan_and_finish_times(self, name, dag):
        node_w, edge_w = weights_for(dag, np.random.default_rng(3))
        ref_fin = dag.top_levels_reference(node_w, edge_w) + node_w
        assert np.array_equal(dag.finish_times(node_w, edge_w), ref_fin)
        assert dag.makespan(node_w, edge_w) == float(ref_fin.max())


@pytest.mark.parametrize("batch", [0, 1, 1000], ids=["R0", "R1", "R1000"])
@pytest.mark.parametrize("name,dag", CASES, ids=[c[0] for c in CASES])
class TestBatchedAgainstReference:
    """Batched passes vs the per-node reference — exact equality."""

    def test_top_levels(self, name, dag, batch):
        rng = np.random.default_rng(4)
        _, edge_w = weights_for(dag, rng)
        node_w = rng.uniform(0.5, 10.0, size=(batch, dag.n))
        got = dag.top_levels(node_w, edge_w)
        want = dag.top_levels_reference(node_w, edge_w)
        assert got.shape == want.shape == (batch, dag.n)
        assert np.array_equal(got, want)

    def test_bottom_levels(self, name, dag, batch):
        rng = np.random.default_rng(5)
        _, edge_w = weights_for(dag, rng)
        node_w = rng.uniform(0.5, 10.0, size=(batch, dag.n))
        got = dag.bottom_levels(node_w, edge_w)
        want = dag.bottom_levels_reference(node_w, edge_w)
        assert np.array_equal(got, want)

    def test_finish_and_makespan(self, name, dag, batch):
        rng = np.random.default_rng(6)
        _, edge_w = weights_for(dag, rng)
        node_w = rng.uniform(0.5, 10.0, size=(batch, dag.n))
        ref_fin = dag.top_levels_reference(node_w, edge_w) + node_w
        assert np.array_equal(dag.finish_times(node_w, edge_w), ref_fin)
        ref_ms = ref_fin.max(axis=-1) if dag.n else np.zeros(batch)
        assert np.array_equal(dag.makespan(node_w, edge_w), ref_ms)
        assert np.array_equal(
            dag.makespan(node_w, edge_w, nonnegative=True), ref_ms
        )


@pytest.mark.parametrize("name,dag", CASES, ids=[c[0] for c in CASES])
def test_native_matches_numpy_kernel(name, dag):
    """The optional C kernel and the numpy kernel agree bit-for-bit.

    When no compiler is available ``_finish_node_major`` already IS the
    numpy path and the check degenerates to self-consistency — still worth
    running for the scratch-buffer copy semantics.
    """
    if dag.n == 0:
        pytest.skip("kernels guard n == 0 before dispatch")
    rng = np.random.default_rng(8)
    _, edge_w = weights_for(dag, rng)
    node_w = rng.uniform(0.5, 10.0, size=(64, dag.n))
    got = dag._finish_node_major(node_w, edge_w).copy()
    want = dag._finish_node_major_numpy(node_w, edge_w).copy()
    assert np.array_equal(got, want)


@pytest.mark.parametrize("name,dag", CASES, ids=[c[0] for c in CASES])
def test_negative_weights_keep_reference_floor(name, dag):
    """No zero floor: the reference overwrites tl with the plain candidate
    max, so negative candidates must propagate, not clamp at 0."""
    rng = np.random.default_rng(11)
    node_w = rng.uniform(-5.0, 5.0, size=(16, dag.n))
    edge_w = rng.uniform(-2.0, 2.0, size=dag.edge_src.shape[0])
    assert np.array_equal(
        dag.top_levels(node_w, edge_w), dag.top_levels_reference(node_w, edge_w)
    )
    assert np.array_equal(
        dag.top_levels(node_w[0], edge_w),
        dag.top_levels_reference(node_w[0], edge_w),
    )


def test_batch_makespans_matches_reference_on_full_gs():
    """End-to-end: pruned Monte-Carlo graph vs reference on the full G_s."""
    problem = make_random_problem(42, n=24, m=3)
    schedule = HeftScheduler().schedule(problem)
    durations = schedule.realize_durations(200, rng=9)
    got = batch_makespans(schedule, durations)
    ref = (
        schedule.disjunctive.top_levels_reference(
            durations, schedule.comm_weights
        )
        + durations
    ).max(axis=-1)
    assert np.array_equal(got, ref)


def test_trusted_decode_matches_validating_construction():
    """from_assignment's peel-skipping path equals the validating one."""
    problem = make_random_problem(43, n=20, m=3)
    schedule = HeftScheduler().schedule(problem)
    order = schedule.linear_order()
    fast = Schedule.from_assignment(problem, order, schedule.proc_of)
    slow = Schedule(problem, [list(t) for t in fast.proc_orders])
    durations = fast.realize_durations(50, rng=10)
    assert np.array_equal(
        batch_makespans(fast, durations), batch_makespans(slow, durations)
    )
    nw = fast.expected_durations()
    assert np.array_equal(
        fast.disjunctive.top_levels(nw, fast.comm_weights),
        slow.disjunctive.top_levels(nw, slow.comm_weights),
    )


class TestScheduleValidationMessages:
    """Vectorized construction rejects bad input with the original messages."""

    def test_out_of_range_task(self, diamond_problem):
        with pytest.raises(
            ValueError, match=re.escape("task id 9 out of range on processor 1")
        ):
            Schedule(diamond_problem, [[0, 1], [9, 2, 3]])

    def test_negative_task(self, diamond_problem):
        with pytest.raises(
            ValueError, match=re.escape("task id -1 out of range on processor 0")
        ):
            Schedule(diamond_problem, [[-1, 0, 1], [2, 3]])

    def test_duplicate_task(self, diamond_problem):
        with pytest.raises(
            ValueError, match=re.escape("task 1 assigned to more than one slot")
        ):
            Schedule(diamond_problem, [[0, 1], [1, 2, 3]])

    def test_missing_task(self, diamond_problem):
        with pytest.raises(
            ValueError, match=re.escape("tasks not assigned to any processor: [3]")
        ):
            Schedule(diamond_problem, [[0, 1], [2]])

    def test_wrong_number_of_orders(self, diamond_problem):
        with pytest.raises(ValueError, match="expected 2 processor orders, got 3"):
            Schedule(diamond_problem, [[0, 1], [2], [3]])

    def test_cyclic_orders(self, diamond_problem):
        # Processor order 3 before 0 contradicts 0 -> 1 -> 3 precedence.
        with pytest.raises(ValueError, match="disjunctive graph is cyclic"):
            Schedule(diamond_problem, [[3, 0], [1, 2]])

    def test_from_assignment_invalid_order_still_rejected(self, diamond_problem):
        # A non-topological scheduling string must not slip through the
        # trusted fast path.
        order = np.array([3, 1, 2, 0])
        proc_of = np.array([0, 0, 1, 1])
        with pytest.raises(ValueError, match="disjunctive graph is cyclic"):
            Schedule.from_assignment(diamond_problem, order, proc_of)
