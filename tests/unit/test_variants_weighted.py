"""Unit tests for GA operator variants and weighted-sum fitness."""

import numpy as np
import pytest

from repro.ga.chromosome import random_chromosome
from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import Individual, SlackFitness
from repro.ga.variants import (
    adjacent_swap_mutation,
    order_only_crossover,
    rebalance_mutation,
    uniform_processor_crossover,
)
from repro.graph.taskgraph import TaskGraph
from repro.moop.weighted_sum import WeightedSumFitness


def _ind(makespan: float, slack: float) -> Individual:
    return Individual(chromosome=None, schedule=None, makespan=makespan, avg_slack=slack)


class TestUniformProcessorCrossover:
    def test_orders_preserved(self, small_random_problem):
        rng = np.random.default_rng(0)
        pa = random_chromosome(small_random_problem, rng)
        pb = random_chromosome(small_random_problem, rng)
        c1, c2 = uniform_processor_crossover(pa, pb, rng)
        assert np.array_equal(c1.order, pa.order)
        assert np.array_equal(c2.order, pb.order)
        c1.validate(small_random_problem)
        c2.validate(small_random_problem)

    def test_children_complementary(self, small_random_problem):
        rng = np.random.default_rng(1)
        pa = random_chromosome(small_random_problem, rng)
        pb = random_chromosome(small_random_problem, rng)
        c1, c2 = uniform_processor_crossover(pa, pb, 3)
        for v in range(small_random_problem.n):
            pair = {int(c1.proc_of[v]), int(c2.proc_of[v])}
            assert pair <= {int(pa.proc_of[v]), int(pb.proc_of[v])}

    def test_mismatched_raises(self, small_random_problem, diamond_problem):
        pa = random_chromosome(small_random_problem, 0)
        pb = random_chromosome(diamond_problem, 0)
        with pytest.raises(ValueError):
            uniform_processor_crossover(pa, pb, 0)


class TestOrderOnlyCrossover:
    def test_valid_children(self, small_random_problem):
        rng = np.random.default_rng(2)
        for _ in range(20):
            pa = random_chromosome(small_random_problem, rng)
            pb = random_chromosome(small_random_problem, rng)
            c1, c2 = order_only_crossover(pa, pb, rng)
            c1.validate(small_random_problem)
            c2.validate(small_random_problem)
            assert np.array_equal(c1.proc_of, pa.proc_of)
            assert np.array_equal(c2.proc_of, pb.proc_of)

    def test_single_task_passthrough(self, single_task_problem):
        pa = random_chromosome(single_task_problem, 0)
        pb = random_chromosome(single_task_problem, 1)
        c1, c2 = order_only_crossover(pa, pb, 2)
        assert c1 is pa and c2 is pb


class TestAdjacentSwapMutation:
    def test_always_valid(self, small_random_problem):
        rng = np.random.default_rng(3)
        c = random_chromosome(small_random_problem, rng)
        for _ in range(30):
            c = adjacent_swap_mutation(small_random_problem, c, rng)
            c.validate(small_random_problem)

    def test_pure_chain_unchanged(self):
        from repro.core.problem import SchedulingProblem

        graph = TaskGraph(4, [(0, 1), (1, 2), (2, 3)])
        problem = SchedulingProblem.deterministic(graph, np.ones((4, 2)))
        c = random_chromosome(problem, 0)
        out = adjacent_swap_mutation(problem, c, 1)
        assert np.array_equal(out.order, c.order)

    def test_single_task_unchanged(self, single_task_problem):
        c = random_chromosome(single_task_problem, 0)
        assert adjacent_swap_mutation(single_task_problem, c, 1) is c

    def test_swaps_independent_pair(self):
        from repro.core.problem import SchedulingProblem

        graph = TaskGraph(2)  # two independent tasks
        problem = SchedulingProblem.deterministic(graph, np.ones((2, 2)))
        c = random_chromosome(problem, 0)
        out = adjacent_swap_mutation(problem, c, 1)
        assert out.order.tolist() == c.order[::-1].tolist()


class TestRebalanceMutation:
    def test_always_valid(self, small_random_problem):
        rng = np.random.default_rng(4)
        c = random_chromosome(small_random_problem, rng)
        for _ in range(30):
            c = rebalance_mutation(small_random_problem, c, rng)
            c.validate(small_random_problem)

    def test_targets_underloaded_processor(self):
        from repro.core.problem import SchedulingProblem

        graph = TaskGraph(4)  # independent tasks
        times = np.ones((4, 2))
        problem = SchedulingProblem.deterministic(graph, times)
        # Everything on processor 0.
        c = random_chromosome(problem, 0)
        c = type(c)(order=c.order, proc_of=np.zeros(4, dtype=np.int64))
        out = rebalance_mutation(problem, c, 5)
        # The moved task lands on the empty processor 1.
        assert np.sum(out.proc_of == 1) == 1


class TestEngineWithVariants:
    def test_engine_accepts_variant_operators(self, small_random_problem):
        engine = GeneticScheduler(
            SlackFitness(),
            GAParams(max_iterations=10),
            rng=0,
            crossover_fn=uniform_processor_crossover,
            mutation_fn=adjacent_swap_mutation,
        )
        result = engine.run(small_random_problem)
        assert result.generations == 10
        result.best.chromosome.validate(small_random_problem)


class TestWeightedSumFitness:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedSumFitness(1.5, 100.0, 5.0)
        with pytest.raises(ValueError):
            WeightedSumFitness(0.5, 0.0, 5.0)

    def test_pure_makespan_ordering(self):
        fit = WeightedSumFitness(1.0, 100.0, 5.0)
        scores = fit.scores([_ind(50.0, 0.0), _ind(200.0, 99.0)])
        assert scores[0] > scores[1]

    def test_pure_slack_ordering(self):
        fit = WeightedSumFitness(0.0, 100.0, 5.0)
        scores = fit.scores([_ind(50.0, 1.0), _ind(200.0, 9.0)])
        assert scores[1] > scores[0]

    def test_reference_scores_near_one(self):
        fit = WeightedSumFitness(0.5, 100.0, 5.0)
        scores = fit.scores([_ind(100.0, 5.0)])
        assert scores[0] == pytest.approx(1.0)

    def test_zero_slack_ref_clamped(self):
        fit = WeightedSumFitness(0.5, 100.0, 0.0)
        scores = fit.scores([_ind(100.0, 1.0)])
        assert np.isfinite(scores[0])

    def test_for_problem_factory(self, small_random_problem):
        fit = WeightedSumFitness.for_problem(small_random_problem, 0.7)
        assert fit.weight == 0.7
        assert fit.m_ref > 0

    def test_usable_in_engine(self, small_random_problem):
        fit = WeightedSumFitness.for_problem(small_random_problem, 0.5)
        engine = GeneticScheduler(fit, GAParams(max_iterations=15), rng=1)
        result = engine.run(small_random_problem)
        assert result.best_fitness >= 1.0 - 1e-9  # HEFT seed scores ~1
