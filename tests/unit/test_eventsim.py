"""Unit tests for the discrete-event execution simulator."""

import numpy as np
import pytest

from repro.schedule.evaluation import evaluate
from repro.schedule.schedule import Schedule
from repro.sim.eventsim import simulate
from tests.conftest import make_random_problem


class TestSimulateHandComputed:
    def test_diamond_two_procs(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        res = simulate(s)
        assert res.makespan == 29.0
        assert res.start_times.tolist() == [0.0, 2.0, 22.0, 26.0]
        assert res.finish_times.tolist() == [2.0, 6.0, 26.0, 29.0]

    def test_packed_schedule(self, diamond_problem):
        s = Schedule(diamond_problem, [[0], [1, 2, 3]])
        res = simulate(s)
        assert res.makespan == 29.0
        assert res.start_times.tolist() == [0.0, 12.0, 22.0, 26.0]

    def test_custom_durations(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        res = simulate(s, np.array([2.0, 14.0, 4.0, 3.0]))
        assert res.makespan == 29.0  # slack of task 1 absorbs the delay

    def test_rejects_wrong_duration_shape(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        with pytest.raises(ValueError, match="shape"):
            simulate(s, np.ones(3))


class TestAgreementWithEvaluator:
    """The event simulator and the critical-path evaluator are independent
    implementations of the same semantics — they must agree exactly."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_schedules_expected_durations(self, seed):
        from repro.heuristics.random_sched import random_schedule

        problem = make_random_problem(seed, n=15, m=3)
        s = random_schedule(problem, seed)
        ev = evaluate(s)
        res = simulate(s)
        assert np.isclose(res.makespan, ev.makespan)
        assert np.allclose(res.start_times, ev.start_times)
        assert np.allclose(res.finish_times, ev.finish_times)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_schedules_realized_durations(self, seed):
        from repro.heuristics.random_sched import random_schedule

        problem = make_random_problem(seed + 100, n=12, m=4, mean_ul=4.0)
        s = random_schedule(problem, seed)
        durs = s.realize_durations(5, rng=seed)
        for d in durs:
            assert np.isclose(simulate(s, d).makespan, evaluate(s, d).makespan)

    def test_heft_schedule_agreement(self, small_random_problem):
        from repro.heuristics.heft import HeftScheduler

        s = HeftScheduler().schedule(small_random_problem)
        assert np.isclose(simulate(s).makespan, evaluate(s).makespan)


class TestGantt:
    def test_gantt_sorted_and_complete(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        entries = simulate(s).gantt(s)
        assert len(entries) == 4
        assert [e.task for e in entries] == [0, 1, 2, 3]
        assert entries[0].processor == 0
        assert entries[2].processor == 1

    def test_no_overlap_within_processor(self, small_random_problem):
        from repro.heuristics.random_sched import random_schedule

        s = random_schedule(small_random_problem, 9)
        entries = simulate(s).gantt(s)
        by_proc: dict[int, list] = {}
        for e in entries:
            by_proc.setdefault(e.processor, []).append(e)
        for items in by_proc.values():
            for a, b in zip(items[:-1], items[1:]):
                assert a.finish <= b.start + 1e-9

    def test_duration_property(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        entries = simulate(s).gantt(s)
        durs = {e.task: e.duration for e in entries}
        assert durs == {0: 2.0, 1: 4.0, 2: 4.0, 3: 3.0}
