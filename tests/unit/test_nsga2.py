"""Unit tests for the NSGA-II extension."""

import numpy as np
import pytest

from repro.ga.engine import GAParams
from repro.moop.nsga2 import Nsga2Scheduler
from repro.moop.pareto import pareto_front_mask


@pytest.fixture(scope="module")
def nsga_result():
    from tests.conftest import make_random_problem

    problem = make_random_problem(7, n=14, m=3)
    params = GAParams(max_iterations=40, population_size=16)
    return problem, Nsga2Scheduler(params, rng=0).run(problem)


class TestNsga2:
    def test_front_nonempty(self, nsga_result):
        _, result = nsga_result
        assert len(result.front) >= 1

    def test_front_is_mutually_nondominated(self, nsga_result):
        _, result = nsga_result
        obj = result.objectives()
        # Minimize makespan, maximize slack.
        as_min = np.column_stack([obj[:, 0], -obj[:, 1]])
        assert np.all(pareto_front_mask(as_min))

    def test_front_sorted_by_makespan(self, nsga_result):
        _, result = nsga_result
        obj = result.objectives()
        assert np.all(np.diff(obj[:, 0]) >= 0)
        # Along a clean front, slack must also increase with makespan.
        assert np.all(np.diff(obj[:, 1]) >= 0)

    def test_front_schedules_valid(self, nsga_result):
        problem, result = nsga_result
        from repro.schedule.evaluation import evaluate

        for ind in result.front:
            ev = evaluate(ind.schedule)
            assert np.isclose(ev.makespan, ind.makespan)
            assert np.isclose(ev.avg_slack, ind.avg_slack)

    def test_heft_seed_anchors_low_makespan(self, nsga_result):
        problem, result = nsga_result
        from repro.heuristics.heft import HeftScheduler
        from repro.schedule.evaluation import expected_makespan

        heft_m = expected_makespan(HeftScheduler().schedule(problem))
        assert result.objectives()[0, 0] <= heft_m + 1e-9

    def test_best_within_budget(self, nsga_result):
        _, result = nsga_result
        obj = result.objectives()
        budget = float(obj[:, 0].max())
        best = result.best_within_budget(budget)
        assert best is not None
        assert best.avg_slack == pytest.approx(obj[:, 1].max())

    def test_best_within_tiny_budget_none(self, nsga_result):
        _, result = nsga_result
        assert result.best_within_budget(1e-6) is None

    def test_reproducible(self):
        from tests.conftest import make_random_problem

        problem = make_random_problem(8, n=10, m=2)
        params = GAParams(max_iterations=10, population_size=10)
        a = Nsga2Scheduler(params, rng=1).run(problem)
        b = Nsga2Scheduler(params, rng=1).run(problem)
        assert np.allclose(a.objectives(), b.objectives())
