"""Unit tests for CPOP, min-min, random scheduler and PartialSchedule."""

import numpy as np
import pytest

from repro.heuristics.base import PartialSchedule
from repro.heuristics.cpop import CpopScheduler, critical_path_tasks
from repro.heuristics.heft import HeftScheduler
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.random_sched import RandomScheduler, random_schedule
from repro.schedule.evaluation import evaluate
from tests.conftest import make_random_problem


class TestPartialSchedule:
    def test_place_and_query(self, diamond_problem):
        ps = PartialSchedule(diamond_problem)
        assert not ps.is_placed(0)
        start, fin = ps.place(0, 0)
        assert (start, fin) == (0.0, 2.0)
        assert ps.is_placed(0)

    def test_ready_time_includes_comm(self, diamond_problem):
        ps = PartialSchedule(diamond_problem)
        ps.place(0, 0)
        assert ps.ready_time(1, 0) == 2.0  # same proc, no comm
        assert ps.ready_time(1, 1) == 12.0  # 2 + 10/1

    def test_ready_time_unplaced_pred_raises(self, diamond_problem):
        ps = PartialSchedule(diamond_problem)
        with pytest.raises(ValueError, match="not placed"):
            ps.ready_time(3, 0)

    def test_eft_insertion_into_gap(self, diamond_problem):
        ps = PartialSchedule(diamond_problem)
        ps.place(0, 0)  # occupies [0, 2) on p0
        ps.place(2, 0)  # ready at 2 -> occupies [2, 8)
        ps.place(1, 1)  # elsewhere
        # Now p0 busy [0,8); a 3-long job ready at 0 must start at 8...
        start, fin = ps.eft(3, 0)
        assert start >= 8.0

    def test_gap_is_used_when_it_fits(self):
        from repro.core.problem import SchedulingProblem
        from repro.graph.taskgraph import TaskGraph

        # Three independent tasks on one processor; place 0 then 2 with a
        # deliberate gap by placing 2 after a fake delay via ready times.
        graph = TaskGraph(3, [(0, 1)], [50.0])
        times = np.array([[2.0, 2.0], [4.0, 4.0], [3.0, 3.0]])
        problem = SchedulingProblem.deterministic(graph, times)
        ps = PartialSchedule(problem)
        ps.place(0, 0)  # [0, 2)
        ps.place(1, 1)  # ready on p1 at 2 + 50 = 52 -> [52, 56)
        # p1 has an idle gap [0, 52); task 2 (3 long) fits at the front.
        start, fin = ps.eft(2, 1)
        assert (start, fin) == (0.0, 3.0)

    def test_double_place_raises(self, diamond_problem):
        ps = PartialSchedule(diamond_problem)
        ps.place(0, 0)
        with pytest.raises(ValueError, match="already placed"):
            ps.place(0, 1)

    def test_to_schedule_requires_all_placed(self, diamond_problem):
        ps = PartialSchedule(diamond_problem)
        ps.place(0, 0)
        with pytest.raises(ValueError, match="not yet placed"):
            ps.to_schedule()

    def test_best_processor_tie_breaks_low_index(self, single_task_problem):
        ps = PartialSchedule(single_task_problem)
        proc, _, fin = ps.best_processor(0)
        assert proc == 0
        assert fin == 7.0


class TestCpop:
    def test_critical_path_is_a_path(self, small_random_problem):
        path = critical_path_tasks(small_random_problem)
        g = small_random_problem.graph
        assert len(path) >= 1
        assert int(path[0]) in g.entry_nodes
        assert int(path[-1]) in g.exit_nodes
        for a, b in zip(path[:-1], path[1:]):
            assert g.has_edge(int(a), int(b))

    def test_produces_valid_schedule(self, small_random_problem):
        s = CpopScheduler().schedule(small_random_problem)
        assert evaluate(s).makespan > 0

    def test_cp_tasks_share_processor(self, small_random_problem):
        s = CpopScheduler().schedule(small_random_problem)
        cp = critical_path_tasks(small_random_problem)
        procs = {int(s.proc_of[v]) for v in cp}
        assert len(procs) == 1

    def test_deterministic(self, small_random_problem):
        assert CpopScheduler().schedule(small_random_problem) == CpopScheduler().schedule(
            small_random_problem
        )

    def test_reasonable_quality(self):
        # CPOP should be within 3x of HEFT on average instances.
        for seed in range(5):
            problem = make_random_problem(seed, n=20, m=3)
            heft_m = evaluate(HeftScheduler().schedule(problem)).makespan
            cpop_m = evaluate(CpopScheduler().schedule(problem)).makespan
            assert cpop_m < 3.0 * heft_m


class TestMinMin:
    def test_produces_valid_schedule(self, small_random_problem):
        s = MinMinScheduler().schedule(small_random_problem)
        assert evaluate(s).makespan > 0

    def test_deterministic(self, small_random_problem):
        assert MinMinScheduler().schedule(
            small_random_problem
        ) == MinMinScheduler().schedule(small_random_problem)

    def test_single_task(self, single_task_problem):
        s = MinMinScheduler().schedule(single_task_problem)
        assert evaluate(s).makespan == 7.0

    def test_chain_serialized_correctly(self, chain_problem):
        s = MinMinScheduler().schedule(chain_problem)
        ev = evaluate(s)
        # Lower bound: best-case times of the chain without comm.
        assert ev.makespan >= 2.0 + 1.0 + 2.0


class TestRandomScheduler:
    def test_valid_and_seedable(self, small_random_problem):
        a = random_schedule(small_random_problem, 5)
        b = random_schedule(small_random_problem, 5)
        assert a == b

    def test_different_seeds_differ(self, small_random_problem):
        a = random_schedule(small_random_problem, 1)
        b = random_schedule(small_random_problem, 2)
        assert a != b

    def test_scheduler_facade_advances_stream(self, small_random_problem):
        sched = RandomScheduler(0)
        a = sched.schedule(small_random_problem)
        b = sched.schedule(small_random_problem)
        assert a != b  # same generator, consecutive draws

    def test_all_tasks_assigned(self, small_random_problem):
        s = random_schedule(small_random_problem, 3)
        assert sorted(
            int(v) for tasks in s.proc_orders for v in tasks
        ) == list(range(small_random_problem.n))
