"""Unit tests for the uncertainty model (Sec. 5 realization machinery)."""

import numpy as np
import pytest

from repro.platform.uncertainty import (
    UncertaintyModel,
    UncertaintyParams,
    generate_ul,
)


class TestUncertaintyParams:
    def test_defaults_match_paper(self):
        p = UncertaintyParams()
        assert p.v1 == 0.5
        assert p.v2 == 0.5

    def test_rejects_ul_below_one(self):
        with pytest.raises(ValueError):
            UncertaintyParams(mean_ul=0.5)

    def test_rejects_bad_cov(self):
        with pytest.raises(ValueError):
            UncertaintyParams(mean_ul=2.0, v1=0.0)


class TestGenerateUl:
    def test_clamped_to_one(self):
        ul = generate_ul(500, 4, UncertaintyParams(mean_ul=2.0), rng=0)
        assert np.all(ul >= 1.0)

    def test_mean_roughly_tracks_target(self):
        ul = generate_ul(3000, 8, UncertaintyParams(mean_ul=6.0), rng=1)
        assert abs(ul.mean() - 6.0) / 6.0 < 0.1


class TestUncertaintyModel:
    @pytest.fixture
    def model(self):
        bcet = np.array([[2.0, 4.0], [6.0, 3.0], [5.0, 5.0]])
        ul = np.array([[2.0, 1.0], [3.0, 2.0], [1.5, 4.0]])
        return UncertaintyModel(bcet, ul)

    def test_expected_times(self, model):
        assert model.expected_times.tolist() == [
            [4.0, 4.0],
            [18.0, 6.0],
            [7.5, 20.0],
        ]

    def test_dimensions(self, model):
        assert model.n == 3
        assert model.m == 2

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            UncertaintyModel(np.ones((2, 2)), np.ones((3, 2)))

    def test_rejects_ul_below_one(self):
        with pytest.raises(ValueError, match=">= 1"):
            UncertaintyModel(np.ones((2, 2)), np.full((2, 2), 0.9))

    def test_rejects_nonpositive_bcet(self):
        with pytest.raises(ValueError):
            UncertaintyModel(np.zeros((2, 2)), np.ones((2, 2)))

    def test_deterministic_factory(self):
        times = np.array([[3.0, 4.0]])
        model = UncertaintyModel.deterministic(times)
        assert np.array_equal(model.expected_times, times)
        assert np.array_equal(model.bcet, times)
        durs = model.realize_durations(np.array([1]), 10, rng=0)
        assert np.allclose(durs, 4.0)

    def test_duration_bounds(self, model):
        low, high = model.duration_bounds(np.array([0, 1, 0]))
        assert low.tolist() == [2.0, 3.0, 5.0]
        # high = (2*UL - 1) * b
        assert high.tolist() == [6.0, 9.0, 10.0]

    def test_realize_durations_within_bounds(self, model):
        proc = np.array([0, 1, 1])
        low, high = model.duration_bounds(proc)
        durs = model.realize_durations(proc, 500, rng=2)
        assert durs.shape == (500, 3)
        assert np.all(durs >= low)
        assert np.all(durs <= high)

    def test_realized_mean_matches_expected(self, model):
        proc = np.array([0, 0, 1])
        durs = model.realize_durations(proc, 20000, rng=3)
        expected = model.expected_durations(proc)
        assert np.allclose(durs.mean(axis=0), expected, rtol=0.05)

    def test_realize_rejects_bad_count(self, model):
        with pytest.raises(ValueError):
            model.realize_durations(np.array([0, 0, 0]), 0)

    def test_expected_durations_indexing(self, model):
        assert model.expected_durations(np.array([1, 0, 1])).tolist() == [
            4.0,
            18.0,
            20.0,
        ]

    def test_quantile_durations(self, model):
        proc = np.array([0, 0, 0])
        low, high = model.duration_bounds(proc)
        assert np.allclose(model.quantile_durations(proc, 0.0), low)
        assert np.allclose(model.quantile_durations(proc, 1.0), high)
        mid = model.quantile_durations(proc, 0.5)
        assert np.allclose(mid, (low + high) / 2)
        # For the uniform model the median equals the mean.
        assert np.allclose(mid, model.expected_durations(proc))

    def test_quantile_rejects_out_of_range(self, model):
        with pytest.raises(ValueError):
            model.quantile_durations(np.array([0, 0, 0]), 1.5)
        with pytest.raises(ValueError):
            model.quantile_times(-0.1)

    def test_quantile_times_matrix(self, model):
        q = model.quantile_times(0.5)
        assert np.allclose(q, model.expected_times)

    def test_generate_factory(self):
        bcet = np.full((30, 4), 5.0)
        model = UncertaintyModel.generate(bcet, UncertaintyParams(mean_ul=3.0), rng=0)
        assert model.n == 30
        assert np.all(model.ul >= 1.0)


class TestDurationFamilies:
    @pytest.fixture
    def model(self):
        bcet = np.array([[2.0, 4.0], [6.0, 3.0], [5.0, 5.0]])
        ul = np.array([[2.0, 1.5], [3.0, 2.0], [1.5, 4.0]])
        return UncertaintyModel(bcet, ul)

    @pytest.mark.parametrize("family", ["uniform", "beta", "bimodal"])
    def test_support_respected(self, model, family):
        proc = np.array([0, 1, 0])
        low, high = model.duration_bounds(proc)
        durs = model.realize_durations(proc, 2000, rng=1, family=family)
        assert np.all(durs >= low - 1e-12)
        assert np.all(durs <= high + 1e-12)

    @pytest.mark.parametrize("family", ["uniform", "beta", "bimodal"])
    def test_mean_preserved(self, model, family):
        proc = np.array([0, 0, 1])
        durs = model.realize_durations(proc, 40000, rng=2, family=family)
        expected = model.expected_durations(proc)
        assert np.allclose(durs.mean(axis=0), expected, rtol=0.03)

    def test_variance_ordering(self, model):
        """beta < uniform < bimodal in variance, by construction."""
        proc = np.array([0, 0, 0])
        var = {}
        for family in ("uniform", "beta", "bimodal"):
            durs = model.realize_durations(proc, 40000, rng=3, family=family)
            var[family] = durs.var(axis=0)
        assert np.all(var["beta"] < var["uniform"])
        assert np.all(var["uniform"] < var["bimodal"])

    def test_unknown_family_rejected(self, model):
        with pytest.raises(ValueError, match="family"):
            model.realize_durations(np.array([0, 0, 0]), 5, rng=0, family="cauchy")
