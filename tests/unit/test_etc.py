"""Unit tests for the COV-based ETC generator (Ali et al. method)."""

import numpy as np
import pytest

from repro.platform.etc import EtcParams, gamma_gamma_matrix, generate_etc


class TestEtcParams:
    def test_defaults_match_paper(self):
        p = EtcParams()
        assert p.mu_task == 20.0
        assert p.v_task == 0.5
        assert p.v_mach == 0.5

    @pytest.mark.parametrize("kwargs", [{"mu_task": 0}, {"v_task": -1}, {"v_mach": 0}])
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            EtcParams(**kwargs)


class TestGammaGammaMatrix:
    def test_shape_and_positivity(self):
        m = gamma_gamma_matrix(50, 8, 20.0, 0.5, 0.5, rng=0)
        assert m.shape == (50, 8)
        assert np.all(m > 0)

    def test_grand_mean(self):
        m = gamma_gamma_matrix(3000, 8, 20.0, 0.5, 0.5, rng=1)
        assert abs(m.mean() - 20.0) / 20.0 < 0.1

    def test_row_cov_reflects_v_mach(self):
        # Within a row the COV should be close to v_mach.
        m = gamma_gamma_matrix(300, 400, 20.0, 0.5, 0.3, rng=2)
        covs = m.std(axis=1) / m.mean(axis=1)
        assert abs(np.median(covs) - 0.3) < 0.05

    def test_row_means_cov_reflects_v_task(self):
        m = gamma_gamma_matrix(4000, 60, 20.0, 0.5, 0.1, rng=3)
        row_means = m.mean(axis=1)
        cov = row_means.std() / row_means.mean()
        # Row means ~ Gamma(mean 20, COV 0.5) plus small v_mach noise.
        assert abs(cov - 0.5) < 0.08

    def test_minimum_clamp(self):
        m = gamma_gamma_matrix(500, 4, 1.2, 0.5, 0.5, rng=4, minimum=1.0)
        assert np.all(m >= 1.0)

    def test_reproducible(self):
        a = gamma_gamma_matrix(10, 3, 5.0, 0.5, 0.5, rng=42)
        b = gamma_gamma_matrix(10, 3, 5.0, 0.5, 0.5, rng=42)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "args",
        [
            (0, 3, 1.0, 0.5, 0.5),
            (3, 0, 1.0, 0.5, 0.5),
            (3, 3, 0.0, 0.5, 0.5),
            (3, 3, 1.0, 0.0, 0.5),
            (3, 3, 1.0, 0.5, -0.5),
        ],
    )
    def test_rejects_bad_args(self, args):
        with pytest.raises(ValueError):
            gamma_gamma_matrix(*args, rng=0)


class TestGenerateEtc:
    def test_default_params(self):
        b = generate_etc(20, 4, rng=0)
        assert b.shape == (20, 4)
        assert np.all(b > 0)

    def test_heterogeneity_visible(self):
        b = generate_etc(100, 8, EtcParams(mu_task=20, v_task=0.5, v_mach=0.5), rng=1)
        # Machine heterogeneity: a task's times differ across processors.
        assert np.all(b.max(axis=1) > b.min(axis=1))
        # Task heterogeneity: task means differ.
        assert b.mean(axis=1).std() > 1.0
