"""Unit tests for repro.obs: spans, metrics, sinks, schema, summary."""

import json
import time

import numpy as np
import pytest

from repro.obs import (
    Histogram,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    TraceSchemaError,
    load_trace,
    render_summary,
    validate_records,
)
from repro.obs import runtime
from repro.obs.sinks import meta_record
from repro.obs.spans import NOOP_SPAN


class FakeClock:
    """Deterministic clock: returns 0.0, 1.0, 2.0, ... per call."""

    def __init__(self) -> None:
        self.t = -1.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


@pytest.fixture
def obs_session():
    """An enabled in-memory session on a fake clock, torn down after."""
    runtime.disable()
    sink = InMemorySink()
    session = runtime.enable(sink, clock=FakeClock())
    yield session, sink
    runtime.disable()


@pytest.fixture(autouse=True)
def _no_leaked_session():
    yield
    runtime.disable()


class TestDisabledMode:
    def test_trace_returns_shared_noop(self):
        assert runtime.trace("anything", x=1) is NOOP_SPAN
        assert runtime.trace("other") is NOOP_SPAN

    def test_noop_span_full_surface(self):
        with runtime.trace("a") as span:
            assert span.set(x=1) is span

    def test_facade_functions_are_noops(self):
        runtime.event("e", k=1)
        runtime.add("c", 3)
        runtime.set_gauge("g", 1.5)
        runtime.observe("h", 0.01)
        runtime.ingest([{"type": "counter", "name": "c", "value": 1}])
        assert not runtime.enabled()

    def test_disabled_call_overhead_is_tiny(self):
        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            runtime.trace("x")
            runtime.add("c")
        per_call = (time.perf_counter() - start) / (2 * n)
        # Generous bound: a no-op facade call is a global read; anything
        # above 10us/call means the disabled path grew real work.
        assert per_call < 10e-6


class TestSpans:
    def test_nesting_parents(self, obs_session):
        _, sink = obs_session
        with runtime.trace("outer"):
            with runtime.trace("inner"):
                pass
        inner, outer = sink.records  # close order: inner first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert inner["id"] > outer["id"]  # ids in start order

    def test_golden_stream(self, obs_session):
        """Exact records under the fake clock — the schema, pinned."""
        _, sink = obs_session
        # epoch consumed tick 0; each clock read below advances by 1
        with runtime.trace("a", n=3):          # t0 = 1
            runtime.event("marker", k="v")     # t = 2
        #                                        t1 = 3
        assert sink.records == [
            {
                "type": "event",
                "id": 2,
                "parent": 1,
                "name": "marker",
                "t": 2.0,
                "attrs": {"k": "v"},
            },
            {
                "type": "span",
                "id": 1,
                "parent": None,
                "name": "a",
                "t0": 1.0,
                "t1": 3.0,
                "dur": 2.0,
                "status": "ok",
                "attrs": {"n": 3},
            },
        ]

    def test_error_status_and_propagation(self, obs_session):
        _, sink = obs_session
        with pytest.raises(KeyError):
            with runtime.trace("outer"):
                with runtime.trace("inner"):
                    raise KeyError("boom")
        inner, outer = sink.spans("inner")[0], sink.spans("outer")[0]
        assert inner["status"] == "error"
        assert inner["attrs"]["error_type"] == "KeyError"
        assert outer["status"] == "error"  # exception passed through it too

    def test_set_attrs_and_sorted_keys(self, obs_session):
        _, sink = obs_session
        with runtime.trace("s", z=1) as span:
            span.set(a=2, m=np.float64(0.5))
        attrs = sink.spans("s")[0]["attrs"]
        assert list(attrs) == ["a", "m", "z"]
        assert attrs["m"] == 0.5 and isinstance(attrs["m"], float)

    def test_nonfinite_attrs_become_strings(self, obs_session):
        _, sink = obs_session
        with runtime.trace("s", r1=float("inf"), r2=float("nan")):
            pass
        attrs = sink.spans("s")[0]["attrs"]
        assert attrs["r1"] == "inf"
        assert attrs["r2"] == "nan"

    def test_nested_enable_rejected(self, obs_session):
        with pytest.raises(RuntimeError, match="already active"):
            runtime.enable(InMemorySink())

    def test_reset_inherited_drops_without_closing(self, obs_session):
        _, sink = obs_session
        runtime.reset_inherited()
        assert not runtime.enabled()
        assert not sink.closed  # the parent still owns the sink


class TestMetrics:
    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        reg.counter("c").add(2)
        with pytest.raises(ValueError, match="decrease"):
            reg.counter("c").add(-1)
        assert reg.counter("c").value == 2

    def test_histogram_shape_and_binning(self):
        h = Histogram("h")
        assert len(h.counts) == len(h.edges) + 1
        h.observe(0.0)      # below lo -> underflow bin
        h.observe(1e9)      # above hi -> overflow bin
        h.observe(1.0)
        assert h.counts[0] == 1
        assert h.counts[-1] == 1
        assert h.count == 3
        assert h.min == 0.0 and h.max == 1e9

    def test_histogram_roundtrip_and_merge(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe(0.5)
        b.observe(2.0)
        b.observe(3.0)
        a.merge(Histogram.from_record(b.to_record()))
        assert a.count == 3
        assert a.total == pytest.approx(5.5)
        record = a.to_record()
        assert sum(record["counts"]) == record["count"] == 3

    def test_export_sorted_and_merge_record(self):
        reg = MetricsRegistry()
        reg.counter("z").add(1)
        reg.counter("a").add(2)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(0.1)
        names = [r["name"] for r in reg.export()]
        assert names == ["a", "z", "g", "h"]

        other = MetricsRegistry()
        for record in reg.export():
            other.merge_record(record)
            other.merge_record(record)  # merging twice doubles counts
        assert other.counter("a").value == 4
        assert other.histogram("h").count == 2
        assert other.gauge("g").value == 0.5


class TestIngest:
    def test_worker_subtree_spliced_under_current_span(self, obs_session):
        _, sink = obs_session
        # A "worker" session with its own 1-based ids.
        worker = runtime.Session(InMemorySink(), clock=FakeClock())
        with worker.tracer.start("cluster.task", {}):
            worker.tracer.point("w.event", {})
        worker.registry.counter("w.count").add(5)
        shipped = worker.sink.records + worker.registry.export()

        with runtime.trace("cluster.run"):
            runtime.ingest(shipped)
        task = sink.spans("cluster.task")[0]
        run = sink.spans("cluster.run")[0]
        event = sink.events("w.event")[0]
        assert task["parent"] == run["id"]        # attached under current
        assert event["parent"] == task["id"]      # interior edge remapped
        assert task["id"] != 1                    # remapped out of local ids
        session = runtime.session()
        assert session.registry.counter("w.count").value == 5

    def test_ingest_validates_after_splice(self, obs_session):
        session, sink = obs_session
        worker = runtime.Session(InMemorySink(), clock=FakeClock())
        with worker.tracer.start("w.span", {}):
            pass
        with runtime.trace("root"):
            runtime.ingest(worker.sink.records)
        session.flush_metrics()
        validate_records([meta_record()] + sink.records)


class TestJsonlSink:
    def test_stream_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        session = runtime.enable(JsonlSink(path), clock=FakeClock())
        with runtime.trace("root", inf_attr=float("inf")):
            runtime.add("count", 2)
            runtime.observe("seconds", 0.25)
        runtime.disable()
        records = load_trace(path)  # validates en route
        assert records[0] == meta_record()
        kinds = [r["type"] for r in records]
        assert kinds == ["meta", "span", "counter", "hist"]
        # strict JSON all the way down: every line parses with no NaN/Inf
        for line in path.read_text().splitlines():
            json.loads(line, parse_constant=pytest.fail)

    def test_empty_run_still_writes_header(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        runtime.enable(JsonlSink(path), clock=FakeClock())
        runtime.disable()
        assert load_trace(path)[0]["type"] == "meta"


class TestValidation:
    def _stream(self, *records):
        return [meta_record(), *records]

    def test_missing_meta_rejected(self):
        with pytest.raises(TraceSchemaError, match="meta"):
            validate_records([])
        with pytest.raises(TraceSchemaError, match="meta"):
            validate_records([{"type": "counter", "name": "c", "value": 1}])

    def test_span_missing_keys_rejected(self):
        with pytest.raises(TraceSchemaError, match="missing keys"):
            validate_records(self._stream({"type": "span", "id": 1}))

    def test_span_negative_duration_rejected(self):
        bad = {
            "type": "span", "id": 1, "parent": None, "name": "s",
            "t0": 5.0, "t1": 1.0, "dur": -4.0, "status": "ok", "attrs": {},
        }
        with pytest.raises(TraceSchemaError, match="ends before"):
            validate_records(self._stream(bad))

    def test_duplicate_ids_rejected(self):
        span = {
            "type": "span", "id": 1, "parent": None, "name": "s",
            "t0": 0.0, "t1": 1.0, "dur": 1.0, "status": "ok", "attrs": {},
        }
        with pytest.raises(TraceSchemaError, match="duplicate"):
            validate_records(self._stream(span, dict(span)))

    def test_hist_bin_mismatch_rejected(self):
        bad = {
            "type": "hist", "name": "h", "edges": [1.0, 2.0],
            "counts": [1, 2], "count": 3, "sum": 3.0, "min": 1.0, "max": 2.0,
        }
        with pytest.raises(TraceSchemaError, match="counts"):
            validate_records(self._stream(bad))

    def test_unknown_type_rejected(self):
        with pytest.raises(TraceSchemaError, match="unknown record type"):
            validate_records(self._stream({"type": "mystery"}))


class TestSummary:
    def test_renders_tree_counters_and_hists(self, obs_session):
        session, sink = obs_session
        with runtime.trace("root"):
            with runtime.trace("child"):
                runtime.event("tick")
            runtime.add("widgets", 7)
            runtime.observe("lat", 0.01)
        session.flush_metrics()
        text = render_summary(sink.records)
        assert "root" in text and "child" in text
        assert "widgets" in text and "7" in text
        assert "lat" in text
        assert "tick" in text
        assert "0 errors" in text

    def test_error_spans_flagged(self, obs_session):
        _, sink = obs_session
        with pytest.raises(RuntimeError):
            with runtime.trace("bad"):
                raise RuntimeError
        text = render_summary(sink.records)
        assert "1 errors" in text
        assert "ERR" in text
