"""Unit tests for the fault-injection subsystem (`repro.faults`).

Hand-computed fault-environment timelines, scenario validation, the
tail-outlier perturbation, the reactive policies and the fault-aware
assessment; the zero-fault bit-identity contract lives in
``tests/property/test_fault_identity.py``.
"""

import math

import numpy as np
import pytest

from repro.faults import (
    BUILTIN_SCENARIOS,
    FaultEnvironment,
    FaultScenario,
    LinkFault,
    OutageFault,
    SlowdownFault,
    TailFault,
    apply_tail_faults,
    assess_robustness_faulty,
    load_scenario,
    luck_fractions,
    resolve_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
    simulate_dynamic_faulty,
    simulate_repair,
)
from repro.robustness.montecarlo import assess_robustness
from repro.schedule.schedule import Schedule
from repro.sim.eventsim import simulate
from tests.conftest import make_random_problem

INF = float("inf")


# --------------------------------------------------------------------- #
# Fault dataclass validation
# --------------------------------------------------------------------- #


class TestFaultValidation:
    def test_slowdown_rejects_bad_factor(self):
        for factor in (0.0, -1.0, INF, float("nan")):
            with pytest.raises(ValueError, match="factor"):
                SlowdownFault(factor=factor)

    def test_window_must_be_nonempty(self):
        with pytest.raises(ValueError, match="end > start"):
            OutageFault(start=2.0, end=2.0)
        with pytest.raises(ValueError, match="end > start"):
            SlowdownFault(factor=2.0, start=3.0, end=1.0)

    def test_window_start_nonnegative(self):
        with pytest.raises(ValueError, match=">= 0"):
            OutageFault(start=-1.0)

    def test_negative_processor_rejected(self):
        with pytest.raises(ValueError, match="processor"):
            OutageFault(processor=-1)

    def test_tail_probability_range(self):
        for p in (-0.1, 1.1):
            with pytest.raises(ValueError, match="probability"):
                TailFault(probability=p)

    def test_tail_family_and_shape(self):
        with pytest.raises(ValueError, match="family"):
            TailFault(probability=0.1, family="cauchy")
        with pytest.raises(ValueError, match="shape"):
            TailFault(probability=0.1, shape=0.0)

    def test_tail_task_ids_normalized(self):
        f = TailFault(probability=0.1, tasks=[np.int64(3), 1])
        assert f.tasks == (3, 1)
        with pytest.raises(ValueError, match="task ids"):
            TailFault(probability=0.1, tasks=(-1,))

    def test_link_fault_matches(self):
        f = LinkFault(factor=2.0, src=0, dst=1)
        assert f.matches(0, 1)
        assert not f.matches(1, 0)
        wild = LinkFault(factor=2.0)
        assert wild.matches(2, 7)

    def test_outage_permanent_flag(self):
        assert OutageFault(start=1.0).permanent
        assert not OutageFault(start=1.0, end=2.0).permanent


class TestScenario:
    def test_rejects_unknown_fault_objects(self):
        with pytest.raises(TypeError, match="unknown fault type"):
            FaultScenario(faults=("not-a-fault",))

    def test_classification(self):
        s = FaultScenario(
            faults=(
                SlowdownFault(factor=2.0),
                OutageFault(start=0.0, end=1.0),
                LinkFault(factor=3.0),
                TailFault(probability=0.1),
            )
        )
        assert len(s.proc_faults) == 2
        assert len(s.link_faults) == 1
        assert len(s.tail_faults) == 1
        assert s.time_dependent
        assert not s.has_permanent_failures
        assert FaultScenario(
            faults=(OutageFault(processor=0, start=1.0),)
        ).has_permanent_failures

    def test_tail_only_scenario_has_no_environment(self):
        s = FaultScenario(faults=(TailFault(probability=0.5),))
        assert not s.time_dependent
        assert s.environment(4) is None
        assert FaultScenario.none().environment(4) is None

    def test_environment_rejects_bad_time_scale(self):
        s = FaultScenario(
            faults=(OutageFault(start=0.1, end=0.2),), relative_times=True
        )
        for scale in (0.0, -1.0, INF):
            with pytest.raises(ValueError, match="time_scale"):
                s.environment(2, time_scale=scale)

    def test_validate_for_out_of_range(self):
        with pytest.raises(ValueError, match="processor 5"):
            FaultScenario(
                faults=(OutageFault(processor=5, start=0.0, end=1.0),)
            ).validate_for(10, 2)
        with pytest.raises(ValueError, match="endpoint"):
            FaultScenario(faults=(LinkFault(factor=2.0, dst=3),)).validate_for(10, 2)
        with pytest.raises(ValueError, match="tasks"):
            FaultScenario(
                faults=(TailFault(probability=0.1, tasks=(12,)),)
            ).validate_for(10, 2)

    def test_validate_for_accepts_in_range(self):
        for scenario in BUILTIN_SCENARIOS.values():
            scenario.validate_for(50, 2)


# --------------------------------------------------------------------- #
# FaultEnvironment: hand-computed speed timelines
# --------------------------------------------------------------------- #


class TestFaultEnvironment:
    def test_requires_a_processor(self):
        with pytest.raises(ValueError, match="at least one"):
            FaultEnvironment(0)

    def test_no_faults_is_unit_speed(self):
        env = FaultEnvironment(3)
        assert env.speed_at(1, 123.0) == 1.0
        assert env.finish_time(0, 5.0, 7.0) == 12.0
        assert env.earliest_start(2, 4.0) == 4.0
        assert env.comm_factor(0, 1, 0.0) == 1.0
        assert not env.has_permanent_failures
        assert env.dead_from(0) == INF

    def test_slowdown_window_integration(self):
        # Speed 1/2 on [0, 10): 6 work units = 5 done by t=10, 1 after.
        env = FaultEnvironment(1, (SlowdownFault(factor=2.0, start=0.0, end=10.0),))
        assert env.speed_at(0, 5.0) == 0.5
        assert env.speed_at(0, 10.0) == 1.0
        assert env.finish_time(0, 0.0, 6.0) == 11.0
        # Entirely inside the window: 2 work at half speed.
        assert env.finish_time(0, 1.0, 2.0) == 5.0
        # After recovery the window is irrelevant.
        assert env.finish_time(0, 10.0, 3.0) == 13.0

    def test_overlapping_slowdowns_multiply(self):
        env = FaultEnvironment(
            1,
            (
                SlowdownFault(factor=2.0, start=0.0, end=10.0),
                SlowdownFault(factor=2.0, start=5.0, end=15.0),
            ),
        )
        assert env.speed_at(0, 2.0) == 0.5
        assert env.speed_at(0, 7.0) == 0.25
        assert env.speed_at(0, 12.0) == 0.5

    def test_outage_suspends_progress(self):
        # 8 work started at 0; 5 done by the outage at t=5, stall to 10,
        # the remaining 3 finish at 13.
        env = FaultEnvironment(1, (OutageFault(start=5.0, end=10.0),))
        assert env.speed_at(0, 7.0) == 0.0
        assert env.finish_time(0, 0.0, 8.0) == 13.0
        assert env.earliest_start(0, 7.0) == 10.0
        assert env.earliest_start(0, 10.0) == 10.0

    def test_outage_dominates_slowdown(self):
        env = FaultEnvironment(
            1,
            (
                SlowdownFault(factor=2.0, start=0.0, end=10.0),
                OutageFault(start=2.0, end=4.0),
            ),
        )
        assert env.speed_at(0, 3.0) == 0.0

    def test_overlapping_outages_merge(self):
        env = FaultEnvironment(
            1,
            (OutageFault(start=1.0, end=3.0), OutageFault(start=2.0, end=5.0)),
        )
        # Work of 1 started at 0 waits through the union [1, 5).
        assert env.finish_time(0, 0.0, 2.0) == 6.0
        assert env.earliest_start(0, 2.5) == 5.0

    def test_permanent_failure(self):
        env = FaultEnvironment(2, (OutageFault(processor=0, start=4.0),))
        assert env.finish_time(0, 0.0, 4.0) == 4.0  # exactly done at death
        assert env.finish_time(0, 0.0, 4.5) == INF
        assert env.earliest_start(0, 4.0) == INF
        assert env.dead_from(0) == 4.0
        assert env.dead_from(1) == INF
        assert env.has_permanent_failures
        # The live processor is untouched.
        assert env.finish_time(1, 0.0, 9.0) == 9.0

    def test_zero_work_finishes_immediately(self):
        env = FaultEnvironment(1, (OutageFault(start=0.0, end=10.0),))
        assert env.finish_time(0, 3.0, 0.0) == 3.0

    def test_finish_time_rejects_bad_work(self):
        env = FaultEnvironment(1)
        with pytest.raises(ValueError, match="work"):
            env.finish_time(0, 0.0, -1.0)

    def test_infinite_start_propagates(self):
        env = FaultEnvironment(1)
        assert env.finish_time(0, INF, 1.0) == INF
        assert env.earliest_start(0, INF) == INF

    def test_time_scale_stretches_windows(self):
        env = FaultEnvironment(
            1, (OutageFault(start=0.3, end=0.6),), time_scale=100.0
        )
        assert env.speed_at(0, 50.0) == 0.0
        assert env.speed_at(0, 20.0) == 1.0
        assert env.earliest_start(0, 40.0) == 60.0

    def test_comm_factor_windows_and_matching(self):
        env = FaultEnvironment(
            2, link_faults=(LinkFault(factor=3.0, src=0, dst=1, start=0.0, end=10.0),)
        )
        assert env.comm_factor(0, 1, 5.0) == 3.0
        assert env.comm_factor(1, 0, 5.0) == 1.0  # direction matters
        assert env.comm_factor(0, 1, 10.0) == 1.0  # window is half-open
        assert env.comm_factor(0, 0, 5.0) == 1.0  # intra-processor free

    def test_rejects_foreign_fault_types(self):
        with pytest.raises(TypeError, match="processor fault"):
            FaultEnvironment(1, (LinkFault(factor=2.0),))
        with pytest.raises(TypeError, match="link fault"):
            FaultEnvironment(1, link_faults=(OutageFault(start=0.0, end=1.0),))

    def test_rejects_out_of_range_targets(self):
        with pytest.raises(ValueError, match="m=1"):
            FaultEnvironment(1, (OutageFault(processor=3, start=0.0, end=1.0),))


# --------------------------------------------------------------------- #
# Fault-aware event simulation (hand-computed on the diamond)
# --------------------------------------------------------------------- #


class TestSimulateWithEnvironment:
    def test_neutral_environment_is_identity(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        plain = simulate(s)
        faulty = simulate(s, env=FaultEnvironment(2))
        assert faulty.makespan == plain.makespan == 29.0
        assert np.array_equal(faulty.start_times, plain.start_times)
        assert np.array_equal(faulty.finish_times, plain.finish_times)

    def test_global_outage_shifts_everything(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        env = FaultEnvironment(2, (OutageFault(start=0.0, end=5.0),))
        res = simulate(s, env=env)
        base = simulate(s)
        assert res.makespan == base.makespan + 5.0
        assert np.array_equal(res.start_times, base.start_times + 5.0)

    def test_mid_task_outage_suspends(self, diamond_problem):
        # Task 0 (2 time units on p0) runs [0, 1), stalls [1, 2), ends at 3.
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        env = FaultEnvironment(2, (OutageFault(processor=0, start=1.0, end=2.0),))
        res = simulate(s, env=env)
        assert res.start_times[0] == 0.0
        assert res.finish_times[0] == 3.0

    def test_permanent_failure_gives_infinite_makespan(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        env = FaultEnvironment(2, (OutageFault(processor=0, start=1.0),))
        res = simulate(s, env=env)  # never deadlocks
        assert math.isinf(res.makespan)
        assert math.isinf(res.finish_times[0])
        # Downstream tasks on the live processor starve on task 0's data.
        assert math.isinf(res.finish_times[2])

    def test_link_fault_delays_transfer(self, diamond_problem):
        # Baseline: task 2 starts at 22 = finish(0) + comm(20, p0 -> p1).
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        env = FaultEnvironment(
            2, link_faults=(LinkFault(factor=2.0, src=0, dst=1, start=0.0, end=10.0),)
        )
        res = simulate(s, env=env)
        assert res.start_times[2] == 42.0  # 2 + 2 * 20

    def test_slowdown_stretches_execution(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        env = FaultEnvironment(2, (SlowdownFault(factor=2.0, processor=0),))
        res = simulate(s, env=env)
        assert res.finish_times[0] == 4.0  # 2 units at half speed
        assert res.finish_times[1] == 12.0  # starts at 4, 4 units at half speed


# --------------------------------------------------------------------- #
# Tail-fault perturbation
# --------------------------------------------------------------------- #


class TestTailFaults:
    def _support(self, n):
        low = np.linspace(1.0, 2.0, n)
        high = low * 3.0
        return low, high

    def test_no_tail_faults_returns_same_object(self):
        low, high = self._support(4)
        d = np.random.default_rng(0).uniform(low, high, size=(5, 4))
        out, k = apply_tail_faults(d, low, high, FaultScenario.none(), None)
        assert out is d
        assert k == 0

    def test_certain_outliers_exceed_worst_case(self):
        low, high = self._support(6)
        gen = np.random.default_rng(1)
        d = gen.uniform(low, high, size=(20, 6))
        s = FaultScenario(faults=(TailFault(probability=1.0),))
        out, k = apply_tail_faults(d, low, high, s, gen)
        assert k == 20 * 6
        assert np.all(out >= high)  # every outlier lands at/beyond the bound
        assert np.all(d <= high)  # the input array was not mutated

    def test_task_subset_leaves_others_untouched(self):
        low, high = self._support(5)
        gen = np.random.default_rng(2)
        d = gen.uniform(low, high, size=(30, 5))
        s = FaultScenario(faults=(TailFault(probability=1.0, tasks=(1, 3)),))
        out, k = apply_tail_faults(d, low, high, s, gen)
        assert k == 30 * 2
        untouched = [0, 2, 4]
        assert np.array_equal(out[:, untouched], d[:, untouched])
        assert np.all(out[:, [1, 3]] >= high[[1, 3]])

    def test_lognormal_family(self):
        low, high = self._support(3)
        gen = np.random.default_rng(3)
        d = gen.uniform(low, high, size=(10, 3))
        s = FaultScenario(
            faults=(TailFault(probability=1.0, family="lognormal", shape=0.5),)
        )
        out, k = apply_tail_faults(d, low, high, s, gen)
        assert k == 30
        assert np.all(out >= high)

    def test_deterministic_support_uses_high_as_spread(self):
        low = np.array([2.0, 2.0])
        high = np.array([2.0, 6.0])  # task 0 deterministic
        gen = np.random.default_rng(4)
        d = np.tile(low, (8, 1))
        s = FaultScenario(faults=(TailFault(probability=1.0),))
        out, _ = apply_tail_faults(d, low, high, s, gen)
        assert np.all(out[:, 0] > 2.0)  # spread = high itself, not zero

    def test_luck_fractions(self):
        low = np.array([1.0, 2.0, 3.0])
        high = np.array([3.0, 2.0, 5.0])  # task 1 deterministic
        d = np.array([2.0, 2.0, 7.0])  # mid-support, exact, outlier
        u = luck_fractions(d, low, high)
        assert u[0] == 0.5
        assert u[1] == 0.0
        assert u[2] == 2.0  # outliers map above 1 and stay outliers


# --------------------------------------------------------------------- #
# Reactive policies
# --------------------------------------------------------------------- #


def _assigned_durations(problem, proc_of, rng=0):
    gen = np.random.default_rng(rng)
    low = problem.uncertainty.bcet
    high = (2.0 * problem.uncertainty.ul - 1.0) * low
    full = gen.uniform(low, high)
    return full[np.arange(problem.n), proc_of]


class TestRepairPolicy:
    def test_fault_free_world_never_redispatches(self):
        problem = make_random_problem(7, n=14, m=3)
        from repro.heuristics.heft import HeftScheduler

        s = HeftScheduler().schedule(problem)
        d = _assigned_durations(problem, s.proc_of, rng=5)
        run = simulate_repair(problem, s.proc_of, d, None)
        assert np.isfinite(run.makespan)
        assert np.array_equal(run.proc_of, s.proc_of)
        assert np.all(np.isfinite(run.finish_times))

    def test_permanent_failure_moves_tasks_to_live_processor(
        self, diamond_problem
    ):
        proc_of = np.array([0, 0, 1, 1])
        d = np.array([2.0, 4.0, 4.0, 3.0])  # expected times on assignment
        env = FaultEnvironment(2, (OutageFault(processor=0, start=0.0),))
        run = simulate_repair(diamond_problem, proc_of, d, env)
        assert np.isfinite(run.makespan)
        assert np.all(run.proc_of == 1)  # both p0 tasks repaired onto p1
        # rerun-static in the same world strands everything.
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        assert math.isinf(simulate(s, d, env=env).makespan)

    def test_all_processors_dead_degrades_to_infinity(self, diamond_problem):
        proc_of = np.array([0, 0, 1, 1])
        d = np.array([2.0, 4.0, 4.0, 3.0])
        env = FaultEnvironment(2, (OutageFault(start=0.0),))
        run = simulate_repair(diamond_problem, proc_of, d, env)  # no deadlock
        assert math.isinf(run.makespan)

    def test_mid_run_failure_repairs_remaining_tasks(self):
        problem = make_random_problem(11, n=16, m=3)
        from repro.heuristics.heft import HeftScheduler

        s = HeftScheduler().schedule(problem)
        d = _assigned_durations(problem, s.proc_of, rng=6)
        env = FaultEnvironment(3, (OutageFault(processor=0, start=1.0),))
        run = simulate_repair(problem, s.proc_of, d, env)
        assert np.isfinite(run.makespan)
        # Whatever could not run on p0 before its death moved elsewhere.
        late_on_p0 = (run.proc_of == 0) & (run.start_times >= 1.0)
        assert not np.any(late_on_p0)

    def test_rejects_wrong_shapes(self, diamond_problem):
        with pytest.raises(ValueError, match="proc_of"):
            simulate_repair(diamond_problem, np.zeros(3, dtype=int), np.ones(4), None)
        with pytest.raises(ValueError, match="durations"):
            simulate_repair(
                diamond_problem, np.zeros(4, dtype=int), np.ones(3), None
            )


class TestDynamicFaultyPolicy:
    def test_matches_plain_dynamic_without_environment(self):
        from repro.sim.dynamic import simulate_dynamic

        problem = make_random_problem(3, n=14, m=3)
        gen = np.random.default_rng(9)
        low = problem.uncertainty.bcet
        high = (2.0 * problem.uncertainty.ul - 1.0) * low
        durations = gen.uniform(low, high)
        plain = simulate_dynamic(problem, durations)
        faulty = simulate_dynamic_faulty(problem, durations, None)
        assert faulty.makespan == plain.makespan
        assert np.array_equal(faulty.proc_of, plain.proc_of)
        assert np.array_equal(faulty.start_times, plain.start_times)

    def test_avoids_dead_processor(self):
        problem = make_random_problem(5, n=12, m=3)
        env = FaultEnvironment(3, (OutageFault(processor=1, start=0.0),))
        durations = np.maximum(problem.expected_times, 1e-9)
        run = simulate_dynamic_faulty(problem, durations, env)
        assert np.isfinite(run.makespan)
        assert not np.any(run.proc_of == 1)

    def test_all_dead_world_completes_with_infinite_makespan(self):
        problem = make_random_problem(6, n=8, m=2)
        env = FaultEnvironment(2, (OutageFault(start=0.0),))
        run = simulate_dynamic_faulty(problem, problem.expected_times, env)
        assert math.isinf(run.makespan)

    def test_rejects_wrong_shape(self, diamond_problem):
        with pytest.raises(ValueError, match="durations"):
            simulate_dynamic_faulty(diamond_problem, np.ones((4, 3)), None)


# --------------------------------------------------------------------- #
# Fault-aware assessment
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def heft_schedule():
    problem = make_random_problem(21, n=18, m=3, mean_ul=3.0)
    from repro.heuristics.heft import HeftScheduler

    return HeftScheduler().schedule(problem)


class TestAssessRobustnessFaulty:
    def test_rejects_bad_arguments(self, heft_schedule):
        with pytest.raises(ValueError, match="unknown policy"):
            assess_robustness_faulty(heft_schedule, policy="hope")
        with pytest.raises(ValueError, match="n_realizations"):
            assess_robustness_faulty(heft_schedule, n_realizations=0)
        with pytest.raises(ValueError, match="chunk_size"):
            assess_robustness_faulty(heft_schedule, n_realizations=5, chunk_size=0)
        with pytest.raises(ValueError, match="processor"):
            assess_robustness_faulty(
                heft_schedule,
                FaultScenario(faults=(OutageFault(processor=9, start=0.0, end=1.0),)),
            )
        with pytest.raises(ValueError, match="uniform"):
            assess_robustness_faulty(
                heft_schedule, n_realizations=5, policy="dynamic", family="beta"
            )

    def test_none_scenario_defaults_to_plain_assessment(self, heft_schedule):
        plain = assess_robustness(heft_schedule, 64, rng=42)
        faulty = assess_robustness_faulty(heft_schedule, None, 64, rng=42)
        assert np.array_equal(faulty.realized_makespans, plain.realized_makespans)
        assert faulty.r1 == plain.r1
        assert faulty.scenario == "none"
        assert faulty.n_realizations == 64
        assert faulty.n_failed == 0

    def test_samples_are_frozen(self, heft_schedule):
        fa = assess_robustness_faulty(heft_schedule, None, 8, rng=0)
        with pytest.raises(ValueError):
            fa.realized_makespans[0] = 0.0

    def test_tail_faults_only_inflate(self, heft_schedule):
        scenario = BUILTIN_SCENARIOS["heavy-tail"]
        plain = assess_robustness(heft_schedule, 128, rng=7)
        faulty = assess_robustness_faulty(heft_schedule, scenario, 128, rng=7)
        # Same base draws; outliers only lengthen tasks, so each realized
        # makespan dominates its fault-free counterpart.
        assert np.all(faulty.realized_makespans >= plain.realized_makespans)
        assert faulty.n_tail_outliers > 0
        assert faulty.policy == "rerun-static"

    def test_permanent_failure_static_vs_repair(self, heft_schedule):
        scenario = BUILTIN_SCENARIOS["proc-failure"]
        static = assess_robustness_faulty(heft_schedule, scenario, 16, rng=3)
        assert static.n_failed == 16
        assert static.r1 == 0.0
        assert static.miss_rate == 1.0
        assert math.isinf(static.mean_makespan)
        repaired = assess_robustness_faulty(
            heft_schedule, scenario, 16, rng=3, policy="repair"
        )
        assert repaired.n_failed == 0
        assert repaired.n_redispatches > 0
        assert np.all(np.isfinite(repaired.realized_makespans))
        # Both policies promise the same fault-free M_0.
        assert repaired.expected_makespan == static.expected_makespan

    def test_outage_window_delays_but_completes(self, heft_schedule):
        scenario = BUILTIN_SCENARIOS["outage-mid"]
        fa = assess_robustness_faulty(heft_schedule, scenario, 16, rng=5)
        assert fa.n_failed == 0
        assert np.all(np.isfinite(fa.realized_makespans))

    def test_dynamic_policy(self, heft_schedule):
        fa = assess_robustness_faulty(
            heft_schedule,
            BUILTIN_SCENARIOS["proc-failure"],
            8,
            rng=1,
            policy="dynamic",
        )
        assert fa.policy == "dynamic"
        assert math.isnan(fa.avg_slack)  # no static schedule to take slack on
        assert np.isfinite(fa.expected_makespan)
        assert fa.n_realizations == 8


# --------------------------------------------------------------------- #
# Spec round-trip and the builtin library
# --------------------------------------------------------------------- #


class TestScenarioSpec:
    def test_dict_round_trip(self):
        for scenario in BUILTIN_SCENARIOS.values():
            assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_infinity_encodes_as_string(self):
        d = scenario_to_dict(BUILTIN_SCENARIOS["proc-failure"])
        assert d["faults"][0]["end"] == "inf"
        assert scenario_from_dict(d).faults[0].permanent

    def test_tasks_tuple_encodes_as_list(self):
        s = FaultScenario(faults=(TailFault(probability=0.1, tasks=(1, 2)),))
        d = scenario_to_dict(s)
        assert d["faults"][0]["tasks"] == [1, 2]
        assert scenario_from_dict(d) == s

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError, match="mapping"):
            scenario_from_dict("not-a-dict")
        with pytest.raises(ValueError, match="unknown fault type"):
            scenario_from_dict({"faults": [{"type": "meteor"}]})
        with pytest.raises(ValueError, match="unknown field"):
            scenario_from_dict(
                {"faults": [{"type": "outage", "severity": "bad"}]}
            )
        with pytest.raises(ValueError, match="fault entry"):
            scenario_from_dict({"faults": ["outage"]})

    def test_json_file_round_trip(self, tmp_path):
        scenario = BUILTIN_SCENARIOS["mixed"]
        path = save_scenario(scenario, tmp_path / "mixed.json")
        assert load_scenario(path) == scenario

    def test_yaml_file_round_trip(self, tmp_path):
        pytest.importorskip("yaml")
        scenario = BUILTIN_SCENARIOS["mixed"]
        path = save_scenario(scenario, tmp_path / "mixed.yaml")
        assert load_scenario(path) == scenario

    def test_resolve_scenario(self, tmp_path):
        assert resolve_scenario("outage-mid") is BUILTIN_SCENARIOS["outage-mid"]
        path = save_scenario(BUILTIN_SCENARIOS["slow-proc"], tmp_path / "s.json")
        assert resolve_scenario(str(path)) == BUILTIN_SCENARIOS["slow-proc"]
        with pytest.raises(ValueError, match="unknown scenario"):
            resolve_scenario("no-such-thing")

    def test_builtins_are_wellformed(self):
        assert "none" in BUILTIN_SCENARIOS
        for name, scenario in BUILTIN_SCENARIOS.items():
            assert scenario.name == name
            if scenario.time_dependent:
                assert scenario.environment(2, time_scale=100.0) is not None


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestFaultsCli:
    def test_list_scenarios(self):
        from repro.cli import run

        out = run(["faults", "--list-scenarios"])
        for name in BUILTIN_SCENARIOS:
            assert name in out

    def test_unknown_scenario_exits(self):
        from repro.cli import run

        with pytest.raises(SystemExit, match="unknown scenario"):
            run(["faults", "--scenario", "no-such-thing", "--quiet"])

    def test_end_to_end_table(self):
        from repro.cli import run

        out = run(
            [
                "faults",
                "--scenario", "proc-failure",
                "--tasks", "10",
                "--realizations", "20",
                "--instances", "1",
                "--policies", "rerun-static", "repair",
                "--ga-iterations", "4",
                "--ga-population", "6",
                "--seed", "2",
                "--quiet",
            ]
        )
        assert "proc-failure" in out
        assert "rerun-static" in out
        assert "repair" in out
        assert "robust-ga" in out
