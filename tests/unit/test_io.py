"""Unit tests for JSON serialization and DOT export."""

import json

import numpy as np
import pytest

from repro.heuristics.heft import HeftScheduler
from repro.io import (
    disjunctive_to_dot,
    graph_to_dot,
    load_problem,
    load_schedule,
    problem_from_dict,
    problem_to_dict,
    report_from_dict,
    report_to_dict,
    save_problem,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.schedule.evaluation import evaluate
from repro.schedule.schedule import Schedule


class TestProblemRoundtrip:
    def test_dict_roundtrip(self, small_random_problem):
        payload = problem_to_dict(small_random_problem)
        back = problem_from_dict(payload)
        assert back.graph == small_random_problem.graph
        assert np.array_equal(back.uncertainty.bcet, small_random_problem.uncertainty.bcet)
        assert np.array_equal(back.uncertainty.ul, small_random_problem.uncertainty.ul)
        assert back.name == small_random_problem.name

    def test_file_roundtrip(self, small_random_problem, tmp_path):
        path = tmp_path / "problem.json"
        save_problem(small_random_problem, path)
        back = load_problem(path)
        assert back.graph == small_random_problem.graph
        # The file is valid, human-readable JSON.
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro.problem"

    def test_schedules_transferable(self, small_random_problem, tmp_path):
        """A schedule computed on the original solves the loaded copy."""
        path = tmp_path / "p.json"
        save_problem(small_random_problem, path)
        loaded = load_problem(path)
        s1 = HeftScheduler().schedule(small_random_problem)
        s2 = HeftScheduler().schedule(loaded)
        assert np.isclose(evaluate(s1).makespan, evaluate(s2).makespan)

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro problem"):
            problem_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self, small_random_problem):
        payload = problem_to_dict(small_random_problem)
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            problem_from_dict(payload)

    def test_detects_corruption(self, small_random_problem):
        payload = problem_to_dict(small_random_problem)
        payload["uncertainty"]["bcet"][0][0] += 1.0
        with pytest.raises(ValueError, match="fingerprint"):
            problem_from_dict(payload)

    def test_custom_transfer_rates_preserved(self, diamond_graph):
        from repro.core.problem import SchedulingProblem
        from repro.platform.platform import Platform

        tr = np.array([[1.0, 3.0], [0.5, 1.0]])
        problem = SchedulingProblem.deterministic(
            diamond_graph, np.ones((4, 2)), Platform(2, tr)
        )
        back = problem_from_dict(problem_to_dict(problem))
        assert back.platform.comm_time(6.0, 0, 1) == 2.0
        assert back.platform.comm_time(6.0, 1, 0) == 12.0


class TestScheduleRoundtrip:
    def test_dict_roundtrip(self, small_random_problem):
        schedule = HeftScheduler().schedule(small_random_problem)
        payload = schedule_to_dict(schedule)
        back = schedule_from_dict(payload, small_random_problem)
        assert back == schedule

    def test_file_roundtrip(self, small_random_problem, tmp_path):
        schedule = HeftScheduler().schedule(small_random_problem)
        path = tmp_path / "schedule.json"
        save_schedule(schedule, path)
        back = load_schedule(path, small_random_problem)
        assert np.isclose(evaluate(back).makespan, evaluate(schedule).makespan)

    def test_rejects_mismatched_problem(self, small_random_problem, diamond_problem):
        schedule = HeftScheduler().schedule(small_random_problem)
        payload = schedule_to_dict(schedule)
        with pytest.raises(ValueError, match="different problem"):
            schedule_from_dict(payload, diamond_problem)

    def test_rejects_wrong_format(self, small_random_problem):
        with pytest.raises(ValueError, match="not a repro schedule"):
            schedule_from_dict({"format": "nope"}, small_random_problem)


class TestReportRoundtrip:
    """report_to_dict / report_from_dict must be bit-exact — the cluster
    checkpoint relies on restored cells being indistinguishable from
    recomputed ones."""

    def _report(self, problem, rng=0):
        from repro.robustness.montecarlo import assess_robustness

        schedule = HeftScheduler().schedule(problem)
        return assess_robustness(schedule, 50, rng)

    def test_round_trip_bit_exact(self, small_random_problem):
        report = self._report(small_random_problem)
        # Through actual JSON text, not just dicts — exactly what the
        # checkpoint journal does.
        payload = json.loads(json.dumps(report_to_dict(report)))
        restored = report_from_dict(payload)
        for attr in (
            "expected_makespan",
            "avg_slack",
            "mean_makespan",
            "mean_tardiness",
            "miss_rate",
            "r1",
            "r2",
        ):
            a, b = getattr(report, attr), getattr(restored, attr)
            assert a == b or (np.isnan(a) and np.isnan(b)), attr
        assert restored.realized_makespans.dtype == np.float64
        assert np.array_equal(
            report.realized_makespans, restored.realized_makespans
        )

    def test_round_trip_preserves_infinite_robustness(self, small_random_problem):
        import dataclasses

        report = self._report(small_random_problem)
        # A schedule that never misses its deadline has R = inf — legal,
        # and not representable in standard JSON without the string coding.
        report = dataclasses.replace(report, r1=float("inf"), r2=float("inf"))
        payload = json.dumps(report_to_dict(report), allow_nan=False)
        restored = report_from_dict(json.loads(payload))
        assert restored.r1 == float("inf")
        assert restored.r2 == float("inf")

    def test_arbitrary_floats_survive_json(self):
        # The fidelity claim the checkpoint rests on: repr-based JSON
        # round-trips reproduce IEEE-754 doubles bit-for-bit.
        rng = np.random.default_rng(7)
        values = rng.random(1000) * np.float64(10.0) ** rng.integers(-300, 300, 1000)
        decoded = np.asarray(json.loads(json.dumps(values.tolist())))
        assert values.tobytes() == decoded.tobytes()

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro robustness-report"):
            report_from_dict({"format": "nope"})

    def test_rejects_wrong_version(self, small_random_problem):
        payload = report_to_dict(self._report(small_random_problem))
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            report_from_dict(payload)


class TestDot:
    def test_graph_to_dot_structure(self, diamond_graph):
        dot = graph_to_dot(diamond_graph)
        assert dot.startswith("digraph")
        assert "0 -> 1" in dot
        assert "2 -> 3" in dot
        assert 'label="20"' in dot  # data size on (0, 2)

    def test_graph_to_dot_custom_labels(self, diamond_graph):
        dot = graph_to_dot(diamond_graph, node_labels={0: "entry"})
        assert 'label="entry"' in dot

    def test_graph_to_dot_hide_data(self, diamond_graph):
        dot = graph_to_dot(diamond_graph, show_data=False)
        assert 'label="20"' not in dot

    def test_disjunctive_to_dot(self, diamond_problem):
        schedule = Schedule(diamond_problem, [[0], [1, 2, 3]])
        dot = disjunctive_to_dot(schedule)
        assert "cluster_p0" in dot
        assert "cluster_p1" in dot
        # The added chain edge (1, 2) is dashed.
        assert "1 -> 2 [style=dashed]" in dot
        # Cross-processor DAG edge carries its comm time.
        assert "0 -> 2" in dot
