"""Unit tests for experiment configuration and workload factory."""

import numpy as np
import pytest

from repro.experiments.config import PAPER_ULS, SCALES, ExperimentConfig, Scale
from repro.experiments.workloads import make_problems


class TestScale:
    def test_paper_preset_matches_sec5(self):
        s = SCALES["paper"]
        assert s.n_graphs == 100
        assert s.n_realizations == 1000
        assert s.n_tasks == 100
        assert s.ga_max_iterations == 1000
        assert s.ga_stagnation == 100

    def test_presets_exist(self):
        assert set(SCALES) == {"paper", "medium", "smoke"}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Scale("bad", 0, 1, 1, 1, 1)


class TestExperimentConfig:
    def test_scale_by_name(self):
        cfg = ExperimentConfig(scale="smoke")
        assert cfg.scale is SCALES["smoke"]

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            ExperimentConfig(scale="huge")

    def test_scale_overrides_dag_n(self):
        cfg = ExperimentConfig(scale="smoke")
        assert cfg.dag.n == SCALES["smoke"].n_tasks

    def test_uncertainty_params(self):
        cfg = ExperimentConfig(scale="smoke")
        u = cfg.uncertainty(4.0)
        assert u.mean_ul == 4.0
        assert u.v1 == 0.5 and u.v2 == 0.5

    def test_ga_params_track_scale(self):
        cfg = ExperimentConfig(scale="smoke")
        p = cfg.ga_params()
        assert p.max_iterations == SCALES["smoke"].ga_max_iterations
        assert p.population_size == 20
        assert p.seed_heft
        assert not cfg.ga_params(seed_heft=False).seed_heft

    def test_paper_uls(self):
        assert PAPER_ULS == (2.0, 4.0, 6.0, 8.0)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale="smoke", m=0)


class TestMakeProblems:
    @pytest.fixture(scope="class")
    def cfg(self):
        return ExperimentConfig(scale="smoke", seed=77)

    def test_count_and_shape(self, cfg):
        problems = make_problems(cfg, 2.0)
        assert len(problems) == cfg.scale.n_graphs
        for p in problems:
            assert p.n == cfg.scale.n_tasks
            assert p.m == cfg.m

    def test_reproducible(self, cfg):
        a = make_problems(cfg, 2.0)
        b = make_problems(cfg, 2.0)
        for pa, pb in zip(a, b):
            assert pa.graph == pb.graph
            assert np.array_equal(pa.uncertainty.ul, pb.uncertainty.ul)

    def test_graphs_shared_across_uls(self, cfg):
        """Different UL levels see the same graphs and BCETs."""
        low = make_problems(cfg, 2.0)
        high = make_problems(cfg, 8.0)
        for pl, ph in zip(low, high):
            assert pl.graph == ph.graph
            assert np.array_equal(pl.uncertainty.bcet, ph.uncertainty.bcet)
            assert not np.array_equal(pl.uncertainty.ul, ph.uncertainty.ul)

    def test_instances_differ(self, cfg):
        problems = make_problems(cfg, 2.0)
        assert problems[0].graph != problems[1].graph

    def test_ul_scales_with_level(self, cfg):
        low = make_problems(cfg, 2.0)
        high = make_problems(cfg, 8.0)
        mean_low = np.mean([p.uncertainty.ul.mean() for p in low])
        mean_high = np.mean([p.uncertainty.ul.mean() for p in high])
        assert mean_high > 2 * mean_low

    def test_rejects_ul_below_one(self, cfg):
        with pytest.raises(ValueError):
            make_problems(cfg, 0.5)
