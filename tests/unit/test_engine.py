"""Unit tests for the GA engine."""

import numpy as np
import pytest

from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import (
    EpsilonConstraintFitness,
    MakespanFitness,
    SlackFitness,
)
from repro.heuristics.heft import HeftScheduler
from repro.schedule.evaluation import evaluate, expected_makespan


class TestGAParams:
    def test_paper_defaults(self):
        p = GAParams()
        assert p.population_size == 20
        assert p.crossover_prob == 0.9
        assert p.mutation_prob == 0.1
        assert p.max_iterations == 1000
        assert p.stagnation_limit == 100
        assert p.seed_heft is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"crossover_prob": 1.5},
            {"mutation_prob": -0.1},
            {"max_iterations": 0},
            {"stagnation_limit": 0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            GAParams(**kwargs)


class TestInitialPopulation:
    def test_contains_heft_seed(self, small_random_problem):
        engine = GeneticScheduler(SlackFitness(), GAParams(max_iterations=1), rng=0)
        pop = engine._initial_population(small_random_problem)
        heft = HeftScheduler().schedule(small_random_problem)
        decoded = [c.decode(small_random_problem) for c in pop]
        assert any(s == heft for s in decoded)

    def test_no_heft_when_disabled(self, small_random_problem):
        engine = GeneticScheduler(
            SlackFitness(), GAParams(max_iterations=1, seed_heft=False), rng=0
        )
        pop = engine._initial_population(small_random_problem)
        assert len(pop) == 20

    def test_unique_chromosomes(self, small_random_problem):
        engine = GeneticScheduler(SlackFitness(), GAParams(max_iterations=1), rng=1)
        pop = engine._initial_population(small_random_problem)
        keys = {c.key() for c in pop}
        assert len(keys) == len(pop) == 20

    def test_population_size_respected(self, small_random_problem):
        engine = GeneticScheduler(
            SlackFitness(), GAParams(population_size=7, max_iterations=1), rng=2
        )
        assert len(engine._initial_population(small_random_problem)) == 7

    def test_tiny_search_space_fills_with_duplicates(self, single_task_problem):
        # Single task on 2 procs: only 2 distinct chromosomes exist.
        engine = GeneticScheduler(
            SlackFitness(), GAParams(population_size=5, max_iterations=1), rng=3
        )
        pop = engine._initial_population(single_task_problem)
        assert len(pop) == 5


class TestRun:
    def test_monotone_best_fitness(self, small_random_problem):
        engine = GeneticScheduler(
            SlackFitness(), GAParams(max_iterations=60, stagnation_limit=30), rng=4
        )
        result = engine.run(small_random_problem)
        hist = np.array(result.history.best_fitness)
        assert np.all(np.diff(hist) >= -1e-12)  # elitism: never degrades

    def test_slack_improves_over_initial(self, small_random_problem):
        engine = GeneticScheduler(
            SlackFitness(),
            GAParams(max_iterations=80, stagnation_limit=40, seed_heft=False),
            rng=5,
        )
        result = engine.run(small_random_problem)
        assert result.history.best_slack[-1] > result.history.best_slack[0]

    def test_makespan_never_worse_than_heft_with_seed(self, small_random_problem):
        engine = GeneticScheduler(
            MakespanFitness(), GAParams(max_iterations=40, stagnation_limit=20), rng=6
        )
        result = engine.run(small_random_problem)
        heft_m = expected_makespan(HeftScheduler().schedule(small_random_problem))
        assert result.best.makespan <= heft_m + 1e-9

    def test_stagnation_stop(self, single_task_problem):
        engine = GeneticScheduler(
            MakespanFitness(),
            GAParams(max_iterations=500, stagnation_limit=5),
            rng=7,
        )
        result = engine.run(single_task_problem)
        assert result.stop_reason == "stagnation"
        assert result.generations <= 20

    def test_max_iterations_stop(self, small_random_problem):
        engine = GeneticScheduler(
            SlackFitness(),
            GAParams(max_iterations=3, stagnation_limit=100),
            rng=8,
        )
        result = engine.run(small_random_problem)
        assert result.generations == 3
        assert result.stop_reason == "max_iterations"

    def test_history_lengths(self, small_random_problem):
        engine = GeneticScheduler(
            SlackFitness(), GAParams(max_iterations=5, stagnation_limit=100), rng=9
        )
        result = engine.run(small_random_problem)
        assert len(result.history) == result.generations + 1  # + initial snapshot
        assert len(result.history.best_chromosomes) == len(result.history)

    def test_reproducible(self, small_random_problem):
        params = GAParams(max_iterations=20, stagnation_limit=50)
        r1 = GeneticScheduler(SlackFitness(), params, rng=10).run(small_random_problem)
        r2 = GeneticScheduler(SlackFitness(), params, rng=10).run(small_random_problem)
        assert r1.best.chromosome.key() == r2.best.chromosome.key()
        assert r1.history.best_fitness == r2.history.best_fitness

    def test_best_schedule_is_valid(self, small_random_problem):
        engine = GeneticScheduler(
            SlackFitness(), GAParams(max_iterations=10), rng=11
        )
        result = engine.run(small_random_problem)
        # Decoding and evaluation must both succeed and agree with history.
        assert np.isclose(
            evaluate(result.schedule).avg_slack, result.history.best_slack[-1]
        )

    def test_scheduler_protocol_facade(self, small_random_problem):
        engine = GeneticScheduler(
            MakespanFitness(), GAParams(max_iterations=5), rng=12
        )
        s = engine.schedule(small_random_problem)
        assert evaluate(s).makespan > 0


class TestEpsilonConstraintRun:
    def test_constraint_respected(self, small_random_problem):
        heft_m = expected_makespan(HeftScheduler().schedule(small_random_problem))
        fit = EpsilonConstraintFitness(1.0, heft_m)
        engine = GeneticScheduler(
            fit, GAParams(max_iterations=60, stagnation_limit=30), rng=13
        )
        result = engine.run(small_random_problem)
        assert result.best.makespan <= heft_m * (1 + 1e-9)

    def test_larger_epsilon_larger_slack(self, small_random_problem):
        heft_m = expected_makespan(HeftScheduler().schedule(small_random_problem))
        slacks = []
        for eps in (1.0, 2.0):
            fit = EpsilonConstraintFitness(eps, heft_m)
            engine = GeneticScheduler(
                fit, GAParams(max_iterations=80, stagnation_limit=40), rng=14
            )
            slacks.append(engine.run(small_random_problem).best.avg_slack)
        assert slacks[1] >= slacks[0]


class TestDurationMatrixOverride:
    def test_quantile_view_changes_metrics(self, uncertain_diamond):
        from repro.ga.fitness import quantile_duration_matrix

        q_matrix = quantile_duration_matrix(uncertain_diamond, 0.95)
        engine = GeneticScheduler(
            MakespanFitness(),
            GAParams(max_iterations=5, population_size=6),
            rng=15,
            duration_matrix=q_matrix,
        )
        result = engine.run(uncertain_diamond)
        # Under the pessimistic view the evaluated makespan must exceed the
        # expected-duration makespan of the same schedule.
        assert result.best.makespan > evaluate(result.schedule).makespan - 1e-9
