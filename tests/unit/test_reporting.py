"""Unit tests for CSV result export."""

import csv
import io

import pytest

from repro.experiments import (
    ExperimentConfig,
    run_best_eps,
    run_eps_grid,
    run_eps_one,
    run_eps_sweep,
    run_slack_effect,
)
from repro.experiments.config import SCALES
from repro.experiments.reporting import (
    best_eps_csv,
    eps_one_csv,
    eps_sweep_csv,
    grid_csv,
    sensitivity_csv,
    slack_effect_csv,
    write_csv,
)
from repro.experiments.sensitivity import run_sensitivity


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(scale=SCALES["smoke"], seed=21)


@pytest.fixture(scope="module")
def grid(cfg):
    return run_eps_grid(cfg, (2.0,), (1.0, 1.5))


def _parse(text: str) -> list[dict]:
    return list(csv.DictReader(io.StringIO(text)))


class TestCsvWriters:
    def test_slack_effect_csv(self, cfg):
        result = run_slack_effect(cfg, "slack", (2.0,), n_steps=3)
        rows = _parse(slack_effect_csv(result))
        # 1 UL x 3 steps x 3 metrics.
        assert len(rows) == 9
        assert {r["metric"] for r in rows} == {"makespan", "slack", "r1"}
        assert all(r["objective"] == "slack" for r in rows)

    def test_eps_one_csv(self, cfg, grid):
        result = run_eps_one(cfg, (2.0,), grid=grid)
        rows = _parse(eps_one_csv(result))
        assert len(rows) == 3
        assert {r["metric"] for r in rows} == {"makespan", "r1", "r2"}

    def test_eps_sweep_csv(self, cfg, grid):
        result = run_eps_sweep(cfg, (2.0,), (1.0, 1.5), grid=grid)
        rows = _parse(eps_sweep_csv(result))
        # 1 UL x 1 swept eps x 2 metrics.
        assert len(rows) == 2
        assert all(r["eps"] == "1.5" for r in rows)

    def test_best_eps_csv(self, cfg, grid):
        result = run_best_eps(cfg, (2.0,), (1.0, 1.5), r_grid=(0.0, 1.0), grid=grid)
        rows = _parse(best_eps_csv(result))
        assert len(rows) == 4
        best = {(r["r"], r["robustness"]): float(r["best_eps"]) for r in rows}
        assert best[("1.0", "r1")] == 1.0  # r=1 always picks min eps

    def test_grid_csv(self, cfg, grid):
        rows = _parse(grid_csv(grid))
        assert len(rows) == 2 * cfg.scale.n_graphs  # 2 eps cells
        for row in rows:
            assert float(row["ga_m0"]) > 0
            assert 0.0 <= float(row["ga_miss_rate"]) <= 1.0

    def test_sensitivity_csv(self, cfg):
        result = run_sensitivity(cfg, "m", (2, 3), mean_ul=2.0)
        rows = _parse(sensitivity_csv(result))
        assert len(rows) == 6
        assert {r["parameter"] for r in rows} == {"m"}

    def test_write_csv(self, tmp_path, cfg, grid):
        path = tmp_path / "grid.csv"
        write_csv(grid_csv(grid), path)
        assert path.exists()
        assert _parse(path.read_text())
