"""Unit tests for the extended CLI commands (compare/gantt/pareto/export)."""

import json
import pathlib

import pytest

from repro.cli import run

ARGS = ["--tasks", "10", "--seed", "3"]


class TestCompare:
    def test_lists_all_schedulers(self):
        out = run(["compare", *ARGS, "--realizations", "60"])
        for name in ("HEFT", "CPOP", "PEFT", "min-min", "robust GA"):
            assert name in out


class TestGantt:
    @pytest.mark.parametrize("scheduler", ["heft", "cpop", "peft", "minmin", "robust"])
    def test_renders_every_scheduler(self, scheduler):
        out = run(["gantt", *ARGS, "--scheduler", scheduler, "--width", "50"])
        assert "P0 |" in out
        assert scheduler in out

    def test_width_respected(self):
        out = run(["gantt", *ARGS, "--width", "40"])
        row = out.splitlines()[1]
        assert len(row) == len("P0 |") + 40 + 1


class TestPareto:
    def test_front_table(self):
        out = run(["pareto", *ARGS, "--iterations", "15"])
        assert "NSGA-II front" in out
        assert "makespan" in out
        assert "avg slack" in out


class TestExport:
    def test_writes_files(self, tmp_path):
        out_file = tmp_path / "inst.json"
        dot_file = tmp_path / "inst.dot"
        out = run(
            ["export", *ARGS, "--out", str(out_file), "--dot", str(dot_file)]
        )
        assert out_file.exists()
        assert dot_file.exists()
        schedule_file = tmp_path / "inst.heft-schedule.json"
        assert schedule_file.exists()
        assert str(out_file) in out

        # The exported pair loads back and pairs up.
        from repro.io import load_problem, load_schedule

        problem = load_problem(out_file)
        schedule = load_schedule(schedule_file, problem)
        assert schedule.n == 10

    def test_exported_dot_is_dot(self, tmp_path):
        out_file = tmp_path / "p.json"
        dot_file = tmp_path / "p.dot"
        run(["export", *ARGS, "--out", str(out_file), "--dot", str(dot_file)])
        assert dot_file.read_text().startswith("digraph")

    def test_json_is_valid(self, tmp_path):
        out_file = tmp_path / "q.json"
        run(["export", *ARGS, "--out", str(out_file)])
        payload = json.loads(out_file.read_text())
        assert payload["format"] == "repro.problem"


class TestJobsFlag:
    def test_fig4_accepts_jobs(self):
        out = run(["fig4", "--scale", "smoke", "--uls", "2", "--quiet", "--jobs", "2"])
        assert "Fig. 4" in out


class TestZooCommand:
    def test_zoo_table(self):
        out = run(["zoo", "--scale", "smoke", "--quiet", "--no-dynamic"])
        assert "Scheduler zoo" in out
        for name in ("heft", "cpop", "peft", "minmin", "robust-ga"):
            assert name in out
        assert "online-mct" not in out

    def test_zoo_includes_dynamic_by_default(self):
        out = run(["zoo", "--scale", "smoke", "--quiet"])
        assert "online-mct" in out


class TestSensitivityCommand:
    def test_sensitivity_table(self):
        out = run(
            [
                "sensitivity",
                "--scale",
                "smoke",
                "--parameter",
                "m",
                "--values",
                "2",
                "3",
                "--quiet",
            ]
        )
        assert "Sensitivity" in out
        assert "R1" in out

    def test_rejects_unknown_parameter(self):
        import pytest

        with pytest.raises(SystemExit):
            run(["sensitivity", "--parameter", "n"])


class TestArgumentValidation:
    """Non-positive counts must exit with a clear parser error, not hang."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["fig4", "--workers", "0"],
            ["fig4", "--jobs", "-2"],
            ["fig4", "--workers", "two"],
            ["solve", "--realizations", "0"],
            ["solve", "--tasks", "-1"],
            ["compare", "--procs", "0"],
        ],
    )
    def test_nonpositive_counts_exit(self, argv, capsys):
        with pytest.raises(SystemExit):
            run(argv)
        assert "integer" in capsys.readouterr().err


class TestTraceFlag:
    def test_export_writes_valid_trace(self, tmp_path):
        from repro.obs import load_trace

        out = tmp_path / "inst.json"
        trace = tmp_path / "run.jsonl"
        run(
            ["export", "--tasks", "10", "--out", str(out), "--trace", str(trace)]
        )
        records = load_trace(trace)  # schema-validates
        names = [r["name"] for r in records if r["type"] == "span"]
        assert "cli.export" in names

    def test_session_closed_after_run(self, tmp_path):
        from repro.obs import runtime

        run(
            [
                "export",
                "--tasks",
                "10",
                "--out",
                str(tmp_path / "i.json"),
                "--trace",
                str(tmp_path / "t.jsonl"),
            ]
        )
        assert not runtime.enabled()

    def test_trace_summary_renders(self, tmp_path):
        out = tmp_path / "inst.json"
        trace = tmp_path / "run.jsonl"
        run(
            ["export", "--tasks", "10", "--out", str(out), "--trace", str(trace)]
        )
        text = run(["trace-summary", str(trace)])
        assert "trace summary" in text
        assert "cli.export" in text

    def test_trace_summary_missing_file_exits(self):
        with pytest.raises(SystemExit, match="no such trace file"):
            run(["trace-summary", "/nonexistent/trace.jsonl"])

    def test_trace_summary_rejects_schema_violation(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "id": 1}\n')
        with pytest.raises(SystemExit, match="schema violation"):
            run(["trace-summary", str(bad)])

    def test_metrics_json_prints_deprecation_note(self, tmp_path, capsys):
        run(
            [
                "fig4",
                "--scale",
                "smoke",
                "--quiet",
                "--metrics-json",
                str(tmp_path / "m.json"),
            ]
        )
        assert "deprecated" in capsys.readouterr().err

    def test_metrics_json_forwards_into_trace_sink(self, tmp_path, capsys):
        """--metrics-json alone derives a trace next to the legacy file."""
        metrics = tmp_path / "m.json"
        run(["fig4", "--scale", "smoke", "--quiet", "--metrics-json", str(metrics)])
        derived = tmp_path / "m.trace.jsonl"
        note = capsys.readouterr().err
        assert str(derived) in note
        assert metrics.exists()  # legacy sink still written
        records = [
            json.loads(line) for line in derived.read_text().splitlines()
        ]
        spans = [r["name"] for r in records if r.get("type") == "span"]
        assert "cli.fig4" in spans
        # The legacy metrics-file content (cluster gauges) is in the
        # trace too — the forwarded sink loses nothing.
        gauges = {r["name"] for r in records if r.get("type") == "gauge"}
        assert any(name.startswith("cluster.") for name in gauges)

    def test_metrics_json_defers_to_explicit_trace(self, tmp_path, capsys):
        """--metrics-json plus --trace: one trace, at the explicit path."""
        metrics = tmp_path / "m.json"
        trace = tmp_path / "explicit.jsonl"
        run(
            [
                "fig4", "--scale", "smoke", "--quiet",
                "--metrics-json", str(metrics),
                "--trace", str(trace),
            ]
        )
        assert "deprecated" in capsys.readouterr().err
        assert trace.exists()
        assert metrics.exists()
        assert not (tmp_path / "m.trace.jsonl").exists()
        spans = [
            json.loads(line)["name"]
            for line in trace.read_text().splitlines()
            if json.loads(line).get("type") == "span"
        ]
        assert "cli.fig4" in spans
