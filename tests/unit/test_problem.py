"""Unit tests for :class:`repro.core.problem.SchedulingProblem`."""

import numpy as np
import pytest

from repro.core.problem import SchedulingProblem
from repro.core.robust import RobustScheduler
from repro.ga.engine import GAParams
from repro.graph.generator import DagParams
from repro.graph.taskgraph import TaskGraph
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel, UncertaintyParams


class TestConstruction:
    def test_dimension_checks(self, diamond_graph):
        with pytest.raises(ValueError, match="tasks"):
            SchedulingProblem(
                graph=diamond_graph,
                platform=Platform(2),
                uncertainty=UncertaintyModel.deterministic(np.ones((3, 2))),
            )
        with pytest.raises(ValueError, match="processors"):
            SchedulingProblem(
                graph=diamond_graph,
                platform=Platform(3),
                uncertainty=UncertaintyModel.deterministic(np.ones((4, 2))),
            )

    def test_accessors(self, diamond_problem):
        assert diamond_problem.n == 4
        assert diamond_problem.m == 2
        assert diamond_problem.expected_times.shape == (4, 2)


class TestRandomFactory:
    def test_reproducible(self):
        a = SchedulingProblem.random(m=3, rng=5)
        b = SchedulingProblem.random(m=3, rng=5)
        assert a.graph == b.graph
        assert np.array_equal(a.uncertainty.bcet, b.uncertainty.bcet)
        assert np.array_equal(a.uncertainty.ul, b.uncertainty.ul)

    def test_paper_defaults(self):
        p = SchedulingProblem.random(rng=0)
        assert p.n == 100
        assert p.m == 4

    def test_custom_params(self):
        p = SchedulingProblem.random(
            m=2,
            dag_params=DagParams(n=10, cc=7.0),
            uncertainty_params=UncertaintyParams(mean_ul=4.0),
            rng=1,
        )
        assert p.n == 10
        # ETC mu defaults to cc: grand mean of BCET should be near 7.
        assert 2.0 < p.uncertainty.bcet.mean() < 25.0
        assert np.all(p.uncertainty.ul >= 1.0)

    def test_expected_times_product(self):
        p = SchedulingProblem.random(m=2, dag_params=DagParams(n=8), rng=2)
        assert np.allclose(
            p.expected_times, p.uncertainty.bcet * p.uncertainty.ul
        )


class TestDeterministicFactory:
    def test_basic(self, diamond_graph):
        times = np.ones((4, 3))
        p = SchedulingProblem.deterministic(diamond_graph, times)
        assert p.m == 3
        assert np.array_equal(p.expected_times, times)

    def test_rejects_bad_shape(self, diamond_graph):
        with pytest.raises(ValueError, match="execution times"):
            SchedulingProblem.deterministic(diamond_graph, np.ones((3, 2)))

    def test_custom_platform(self, diamond_graph):
        platform = Platform(2, np.array([[1.0, 4.0], [4.0, 1.0]]))
        p = SchedulingProblem.deterministic(diamond_graph, np.ones((4, 2)), platform)
        assert p.platform is platform


class TestRobustSchedulerApi:
    def test_solve_returns_feasible(self, small_random_problem):
        result = RobustScheduler(
            epsilon=1.0, params=GAParams(max_iterations=40, stagnation_limit=20), rng=0
        ).solve(small_random_problem)
        assert result.feasible
        assert result.expected_makespan <= result.m_heft * (1 + 1e-9)
        assert result.avg_slack >= 0

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            RobustScheduler(epsilon=0.0)

    def test_schedule_facade(self, small_random_problem):
        s = RobustScheduler(
            epsilon=1.5, params=GAParams(max_iterations=10), rng=1
        ).schedule(small_random_problem)
        from repro.schedule.evaluation import evaluate

        assert evaluate(s).makespan > 0

    def test_ga_result_exposed(self, small_random_problem):
        result = RobustScheduler(
            epsilon=1.2, params=GAParams(max_iterations=10), rng=2
        ).solve(small_random_problem)
        assert result.ga_result.generations >= 1
        assert result.epsilon == 1.2
