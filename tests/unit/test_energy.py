"""Unit tests for :mod:`repro.energy` — power, objective, replication."""

import json

import numpy as np
import pytest

from repro.cli import run as cli_run
from repro.core.problem import SchedulingProblem
from repro.energy import (
    REPLICATION_POLICIES,
    EnergyConstraintFitness,
    EnergyScheduler,
    PowerModel,
    build_replication_plan,
    slowest_feasible_freqs,
    verify_survival,
)
from repro.faults import assess_robustness_faulty
from repro.faults.scenario import FaultScenario
from repro.ga.engine import GAParams, GeneticScheduler
from repro.graph.generator import DagParams
from repro.heuristics.heft import HeftScheduler
from repro.moop import energy_front
from repro.platform.uncertainty import UncertaintyParams
from repro.schedule.evaluation import evaluate, expected_makespan


def _problem(seed=0, n=24, m=4, ul=2.0):
    return SchedulingProblem.random(
        m=m,
        dag_params=DagParams(n=n),
        uncertainty_params=UncertaintyParams(mean_ul=ul),
        rng=seed,
    )


_PARAMS = GAParams(population_size=10, max_iterations=15, stagnation_limit=8)


# --------------------------------------------------------------------------- #
# PowerModel
# --------------------------------------------------------------------------- #


class TestPowerModel:
    def test_validation_rejects_bad_shapes_and_values(self):
        with pytest.raises(ValueError, match="equal length"):
            PowerModel(np.ones(3), np.ones(2))
        with pytest.raises(ValueError, match=">= 0"):
            PowerModel(np.array([-1.0]), np.array([0.0]))
        with pytest.raises(ValueError, match="idle power"):
            PowerModel(np.array([1.0]), np.array([2.0]))
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            PowerModel(np.ones(2), np.zeros(2), freq_levels=(1.5,))
        with pytest.raises(ValueError, match="link_power"):
            PowerModel(np.ones(2), np.zeros(2), link_power=-0.1)

    def test_freq_levels_are_normalized_sorted_with_full_speed(self):
        power = PowerModel(np.ones(2), np.zeros(2), freq_levels=(0.8, 0.6))
        assert power.freq_levels == (0.6, 0.8, 1.0)

    def test_null_and_validate_for(self):
        power = PowerModel.null(3)
        assert power.is_null and power.m == 3
        power.validate_for(3)
        with pytest.raises(ValueError, match="covers 3 processors"):
            power.validate_for(4)

    def test_cubic_power_scaling(self):
        power = PowerModel(np.array([10.0]), np.array([2.0]))
        assert power.power_at(np.array([1.0]))[0] == pytest.approx(10.0)
        assert power.power_at(np.array([0.5]))[0] == pytest.approx(
            2.0 + 8.0 * 0.125
        )

    def test_energy_of_accounts_active_idle_comm(self):
        problem = _problem()
        schedule = HeftScheduler().schedule(problem)
        power = PowerModel.uniform(4, active=2.0, idle=0.5, link_power=1.0)
        breakdown = power.energy_of(schedule)
        busy = np.bincount(
            schedule.proc_of,
            weights=schedule.expected_durations(),
            minlength=4,
        )
        assert np.allclose(breakdown.active, busy * 2.0)
        assert np.allclose(
            breakdown.idle, (breakdown.makespan - busy) * 0.5
        )
        assert breakdown.comm == pytest.approx(
            float(schedule.comm_weights.sum())
        )
        assert breakdown.total == pytest.approx(
            breakdown.active.sum() + breakdown.idle.sum() + breakdown.comm
        )

    def test_dvfs_stretches_durations_and_scales_power(self):
        problem = _problem()
        schedule = HeftScheduler().schedule(problem)
        power = PowerModel.uniform(
            4, active=1.0, idle=0.0, freq_levels=(0.5, 1.0)
        )
        full = power.energy_of(schedule)
        slowed = power.energy_of(schedule, freqs=np.full(4, 0.5))
        # Duration doubles but power drops 8x: active energy quarters.
        assert slowed.active.sum() == pytest.approx(full.active.sum() / 4.0)
        assert slowed.makespan >= full.makespan

    def test_population_energies_matches_energy_of(self):
        problem = _problem()
        power = PowerModel.default(4)
        heft = HeftScheduler().schedule(problem)
        rng = np.random.default_rng(3)
        orders = [heft.linear_order() for _ in range(3)]
        procs = [rng.integers(0, 4, size=problem.n) for _ in range(3)]
        from repro.schedule.schedule import Schedule

        schedules = [
            Schedule.from_assignment(problem, o, p)
            for o, p in zip(orders, procs)
        ]
        proc_of = np.stack([s.proc_of for s in schedules])
        makespans = np.asarray([evaluate(s).makespan for s in schedules])
        pop = power.population_energies(problem, proc_of, makespans)
        singles = [power.energy_of(s).total for s in schedules]
        assert np.allclose(pop, singles, rtol=1e-10)

    def test_energy_of_run_prices_simulated_execution(self):
        from repro.sim.eventsim import simulate

        problem = _problem()
        schedule = HeftScheduler().schedule(problem)
        power = PowerModel.uniform(4, active=1.0, idle=0.0)
        result = simulate(schedule)
        priced = power.energy_of_run(schedule, result)
        assert priced.total == pytest.approx(
            power.energy_of(schedule).total
        )
        busy = result.busy_times(schedule)
        assert busy.sum() == pytest.approx(
            float(schedule.expected_durations().sum())
        )

    def test_to_dict_round_trip(self):
        power = PowerModel.default(4)
        again = PowerModel.from_dict(json.loads(json.dumps(power.to_dict())))
        assert np.array_equal(again.active, power.active)
        assert np.array_equal(again.idle, power.idle)
        assert again.freq_levels == power.freq_levels
        assert again.link_power == power.link_power

    def test_slowest_feasible_freqs_respects_bound_and_saves_energy(self):
        problem = _problem()
        schedule = HeftScheduler().schedule(problem)
        power = PowerModel.default(4)
        bound = 1.5 * expected_makespan(schedule)
        freqs, breakdown = slowest_feasible_freqs(schedule, power, bound)
        assert np.all((freqs > 0.0) & (freqs <= 1.0))
        assert breakdown.makespan <= bound * (1 + 1e-9)
        assert breakdown.total <= power.energy_of(schedule).total
        assert np.any(freqs < 1.0)  # a 1.5x budget leaves room to slow down


# --------------------------------------------------------------------------- #
# EnergyConstraintFitness / EnergyScheduler
# --------------------------------------------------------------------------- #


class TestEnergyObjective:
    def test_fitness_orders_feasible_by_energy(self):
        problem = _problem()
        power = PowerModel.default(4)
        fitness = EnergyConstraintFitness.for_problem(problem, power, 50.0)
        engine = GeneticScheduler(fitness, _PARAMS, rng=0)
        population = engine._initial_population(problem)
        individuals = engine._evaluate_batch(problem, population, {})
        scores = fitness.scores(individuals)
        proc_of = np.stack([i.chromosome.proc_of for i in individuals])
        makespans = np.asarray([i.makespan for i in individuals])
        energies = power.population_energies(problem, proc_of, makespans)
        # eps=50: everything is feasible, so scores are 1/(1+E) exactly.
        assert np.allclose(scores, 1.0 / (1.0 + energies))

    def test_infeasible_scores_sit_below_every_feasible_one(self):
        problem = _problem()
        power = PowerModel.default(4)
        fitness = EnergyConstraintFitness.for_problem(problem, power, 1.0)
        engine = GeneticScheduler(fitness, _PARAMS, rng=0)
        individuals = engine._evaluate_batch(
            problem, engine._initial_population(problem), {}
        )
        scores = fitness.scores(individuals)
        feasible = np.asarray(
            [fitness.is_feasible(i.makespan) for i in individuals]
        )
        if feasible.any() and (~feasible).any():
            assert scores[~feasible].max() < scores[feasible].min()

    def test_rejects_bad_parameters(self):
        problem = _problem()
        power = PowerModel.default(4)
        with pytest.raises(ValueError, match="epsilon"):
            EnergyConstraintFitness(power, problem, 0.0, 100.0)
        with pytest.raises(ValueError, match="m_heft"):
            EnergyConstraintFitness(power, problem, 1.0, 0.0)
        with pytest.raises(ValueError, match="min_slack"):
            EnergyConstraintFitness(power, problem, 1.0, 100.0, min_slack=-1)
        with pytest.raises(ValueError, match="slack_ratio"):
            EnergyScheduler(slack_ratio=1.5)
        with pytest.raises(ValueError, match="epsilon"):
            EnergyScheduler(epsilon=-1.0)

    def test_scheduler_beats_heft_on_energy_within_budget(self):
        problem = _problem(seed=1, n=30)
        power = PowerModel.default(4)
        result = EnergyScheduler(
            epsilon=1.4, power=power, params=_PARAMS, rng=7, slack_ratio=0.5
        ).solve(problem)
        assert result.feasible
        assert result.expected_makespan <= 1.4 * result.m_heft * (1 + 1e-9)
        assert result.avg_slack >= result.min_slack * (1 - 1e-9)
        assert result.energy <= result.heft_energy * (1 + 1e-9)

    def test_slack_floor_is_recorded_and_enforced(self):
        problem = _problem(seed=2)
        power = PowerModel.default(4)
        result = EnergyScheduler(
            epsilon=1.5, power=power, params=_PARAMS, rng=3, slack_ratio=1.0
        ).solve(problem)
        heft_slack = evaluate(result.heft_schedule).avg_slack
        assert result.min_slack == pytest.approx(heft_slack)
        assert result.avg_slack >= result.min_slack * (1 - 1e-9)

    def test_energy_front_is_non_dominated_and_sorted(self):
        problem = _problem(seed=3)
        front = energy_front(
            problem,
            PowerModel.default(4),
            epsilons=(1.0, 1.3, 1.6),
            params=_PARAMS,
            rng=5,
            slack_ratio=0.5,
        )
        assert len(front.epsilons) >= 1
        assert np.all(np.diff(front.makespans) >= 0)
        obj = front.objectives()
        for i in range(len(obj)):
            for j in range(len(obj)):
                if i != j:
                    assert not (
                        np.all(obj[j] <= obj[i]) and np.any(obj[j] < obj[i])
                    )


# --------------------------------------------------------------------------- #
# Replication
# --------------------------------------------------------------------------- #


class TestReplication:
    def _plan(self, k=1, policy="overlap", seed=0, deadline_factor=4.0):
        problem = _problem(seed=seed)
        schedule = HeftScheduler().schedule(problem)
        deadline = deadline_factor * expected_makespan(schedule)
        return problem, schedule, build_replication_plan(
            problem, schedule, k=k, policy=policy, deadline=deadline
        )

    def test_backups_are_distinct_from_primary_and_each_other(self):
        for k in (1, 2):
            problem, schedule, plan = self._plan(k=k)
            for i in range(problem.n):
                procs = {int(schedule.proc_of[i])} | {
                    int(b) for b in plan.backup_procs[i]
                }
                assert len(procs) == k + 1

    def test_build_validation(self):
        problem = _problem()
        schedule = HeftScheduler().schedule(problem)
        with pytest.raises(ValueError, match="policy"):
            build_replication_plan(
                problem, schedule, policy="bogus", deadline=1.0
            )
        with pytest.raises(ValueError, match="k must be"):
            build_replication_plan(problem, schedule, k=0, deadline=1.0)
        with pytest.raises(ValueError, match="at least 5 processors"):
            build_replication_plan(problem, schedule, k=4, deadline=1.0)
        with pytest.raises(ValueError, match="deadline"):
            build_replication_plan(problem, schedule, k=1, deadline=0.0)

    def test_recovery_schedule_avoids_failed_processors(self):
        problem, schedule, plan = self._plan(k=2)
        for subset in plan.failure_subsets():
            recovery = plan.recovery_schedule(subset)
            assert not np.isin(recovery.proc_of, list(subset)).any()
            assert np.isfinite(evaluate(recovery).makespan)

    def test_recovery_rejects_too_many_failures(self):
        _, _, plan = self._plan(k=1)
        with pytest.raises(ValueError, match="tolerates k=1"):
            plan.recovery_assignment((0, 1))
        with pytest.raises(ValueError, match="out of range"):
            plan.recovery_assignment((99,))

    def test_overlap_reserves_no_more_than_duplicate(self):
        for seed in (0, 1, 2):
            problem, schedule, overlap = self._plan(policy="overlap", seed=seed)
            duplicate = build_replication_plan(
                problem, schedule, k=1, policy="duplicate",
                deadline=overlap.deadline,
            )
            assert np.all(
                overlap.reserved_time() <= duplicate.reserved_time() + 1e-12
            )

    def test_overlap_strictly_beats_duplicate_on_fault_free_energy(self):
        power = PowerModel.default(4)
        for seed in (0, 1, 2):
            problem, schedule, overlap = self._plan(policy="overlap", seed=seed)
            duplicate = build_replication_plan(
                problem, schedule, k=1, policy="duplicate",
                deadline=overlap.deadline,
            )
            e_overlap = overlap.energy(power)
            e_duplicate = duplicate.energy(power)
            assert e_overlap.backup == 0.0
            assert e_duplicate.backup > 0.0
            assert e_overlap.total < e_duplicate.total
            # Same placements: the worst-case recovery bill is shared.
            assert e_overlap.worst_case_backup == pytest.approx(
                e_duplicate.worst_case_backup
            )

    @pytest.mark.parametrize("policy", REPLICATION_POLICIES)
    def test_survival_against_every_single_failure(self, policy):
        """SIGKILL-grade permanent outages on any 1 processor: the backup
        schedule still completes and meets the deadline."""
        _, _, plan = self._plan(policy=policy, deadline_factor=4.0)
        report = verify_survival(plan, n_realizations=8, rng=0)
        assert report.n_subsets == 4
        assert report.survives
        assert report.guaranteed
        assert report.n_missed == 0
        assert report.worst_realized_makespan <= plan.deadline * (1 + 1e-9)
        payload = report.to_dict()
        assert payload["survives"] and payload["guaranteed"]

    def test_survival_k2_with_wider_deadline(self):
        _, _, plan = self._plan(k=2, deadline_factor=8.0)
        report = verify_survival(plan, n_realizations=4, rng=1)
        assert report.n_subsets == 4 + 6
        assert report.survives

    def test_unreplicated_schedule_dies_under_permanent_failure(self):
        """Control: without replication, a permanent failure strands every
        task on the dead processor — the fault model really is lethal."""
        problem = _problem()
        schedule = HeftScheduler().schedule(problem)
        used = np.unique(schedule.proc_of)
        scenario = FaultScenario.processor_failures([int(used[0])])
        assessment = assess_robustness_faulty(schedule, scenario, 4, rng=0)
        assert assessment.n_failed == 4
        assert np.all(np.isinf(assessment.realized_makespans))

    def test_tight_deadline_fails_survival(self):
        _, _, plan = self._plan(deadline_factor=1.0)
        report = verify_survival(plan, n_realizations=4, rng=2)
        assert not report.survives


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


class TestEnergyCli:
    def test_energy_command_smoke(self):
        out = cli_run([
            "energy", "--tasks", "16", "--instances", "1",
            "--realizations", "20", "--replication-realizations", "2",
            "--ga-iterations", "8", "--ga-population", "8",
            "--epsilons", "1.0", "1.4", "--quiet",
        ])
        assert "energy grid" in out
        assert "energy-ga" in out
        assert "replication" in out
        assert "overlap" in out and "duplicate" in out

    def test_energy_command_null_power_skip_replication(self):
        out = cli_run([
            "energy", "--tasks", "12", "--power", "null", "--k", "0",
            "--realizations", "10", "--ga-iterations", "5",
            "--ga-population", "6", "--epsilons", "1.2", "--quiet",
        ])
        assert "power=null" in out
        assert "replication" not in out

    def test_energy_command_rejects_bad_slack_ratio(self):
        with pytest.raises(SystemExit, match="slack-ratio"):
            cli_run(["energy", "--slack-ratio", "2.0"])
