"""Unit tests for :mod:`repro.graph.taskgraph`."""

import numpy as np
import pytest

from repro.graph.taskgraph import TaskGraph


class TestConstruction:
    def test_minimal_single_node(self):
        g = TaskGraph(1)
        assert g.n == 1
        assert g.num_edges == 0
        assert list(g.entry_nodes) == [0]
        assert list(g.exit_nodes) == [0]

    def test_basic_edges(self, diamond_graph):
        assert diamond_graph.n == 4
        assert diamond_graph.num_edges == 4
        assert diamond_graph.has_edge(0, 1)
        assert diamond_graph.has_edge(2, 3)
        assert not diamond_graph.has_edge(1, 2)
        assert not diamond_graph.has_edge(1, 0)

    def test_data_sizes_aligned(self, diamond_graph):
        assert diamond_graph.data_size(0, 1) == 10.0
        assert diamond_graph.data_size(0, 2) == 20.0

    def test_data_size_missing_edge_raises(self, diamond_graph):
        with pytest.raises(KeyError):
            diamond_graph.data_size(1, 2)

    def test_default_data_sizes_zero(self):
        g = TaskGraph(3, [(0, 1), (1, 2)])
        assert g.data_size(0, 1) == 0.0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError, match="at least one task"):
            TaskGraph(0)

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="out of range"):
            TaskGraph(2, [(0, 2)])
        with pytest.raises(ValueError, match="out of range"):
            TaskGraph(2, [(-1, 0)])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            TaskGraph(2, [(1, 1)])

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskGraph(3, [(0, 1), (0, 1)])

    def test_rejects_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph(3, [(0, 1), (1, 2), (2, 0)])

    def test_rejects_two_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph(2, [(0, 1), (1, 0)])

    def test_rejects_negative_data(self):
        with pytest.raises(ValueError, match="non-negative"):
            TaskGraph(2, [(0, 1)], [-1.0])

    def test_rejects_misaligned_data(self):
        with pytest.raises(ValueError, match="one entry per edge"):
            TaskGraph(2, [(0, 1)], [1.0, 2.0])

    def test_arrays_immutable(self, diamond_graph):
        with pytest.raises(ValueError):
            diamond_graph.edge_data[0] = 99.0


class TestTopologyQueries:
    def test_entry_exit_nodes(self, diamond_graph):
        assert list(diamond_graph.entry_nodes) == [0]
        assert list(diamond_graph.exit_nodes) == [3]

    def test_multiple_entries_exits(self):
        g = TaskGraph(4, [(0, 2), (1, 2)])
        assert list(g.entry_nodes) == [0, 1, 3]
        assert list(g.exit_nodes) == [2, 3]

    def test_successors_predecessors(self, diamond_graph):
        assert sorted(diamond_graph.successors(0).tolist()) == [1, 2]
        assert sorted(diamond_graph.predecessors(3).tolist()) == [1, 2]
        assert diamond_graph.predecessors(0).size == 0
        assert diamond_graph.successors(3).size == 0

    def test_degrees(self, diamond_graph):
        assert diamond_graph.in_degree().tolist() == [0, 1, 1, 2]
        assert diamond_graph.out_degree().tolist() == [2, 1, 1, 0]

    def test_canonical_topological_order(self, diamond_graph):
        topo = diamond_graph.topological
        pos = {int(v): i for i, v in enumerate(topo)}
        for u, v, _ in diamond_graph.edges():
            assert pos[u] < pos[v]

    def test_topological_is_deterministic(self):
        g1 = TaskGraph(5, [(0, 2), (1, 2), (2, 3), (2, 4)])
        g2 = TaskGraph(5, [(0, 2), (1, 2), (2, 3), (2, 4)])
        assert np.array_equal(g1.topological, g2.topological)

    def test_edges_iteration_canonical_order(self):
        g = TaskGraph(4, [(2, 3), (0, 1), (0, 2)], [3.0, 1.0, 2.0])
        assert list(g.edges()) == [(0, 1, 1.0), (0, 2, 2.0), (2, 3, 3.0)]


class TestConversions:
    def test_from_dict(self):
        g = TaskGraph.from_dict({0: [1, 2], 1: [3], 2: [3]}, {(0, 1): 5.0})
        assert g.n == 4
        assert g.num_edges == 4
        assert g.data_size(0, 1) == 5.0
        assert g.data_size(1, 3) == 0.0

    def test_from_dict_explicit_n(self):
        g = TaskGraph.from_dict({0: [1]}, n=5)
        assert g.n == 5
        assert list(g.exit_nodes) == [1, 2, 3, 4]

    def test_networkx_roundtrip(self, diamond_graph):
        nx_graph = diamond_graph.to_networkx()
        back = TaskGraph.from_networkx(nx_graph)
        assert back == diamond_graph

    def test_from_networkx_rejects_bad_labels(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError, match="0..n-1"):
            TaskGraph.from_networkx(g)

    def test_networkx_preserves_data(self, diamond_graph):
        nxg = diamond_graph.to_networkx()
        assert nxg.edges[0, 2]["data"] == 20.0


class TestEqualityHash:
    def test_equal_graphs(self):
        a = TaskGraph(3, [(0, 1), (1, 2)], [1.0, 2.0])
        b = TaskGraph(3, [(1, 2), (0, 1)], [2.0, 1.0])  # same canonical form
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_data(self):
        a = TaskGraph(3, [(0, 1)], [1.0])
        b = TaskGraph(3, [(0, 1)], [2.0])
        assert a != b

    def test_not_equal_other_type(self):
        assert TaskGraph(1) != 42
