"""Unit tests for bootstrap CIs and convergence profiles."""

import numpy as np
import pytest

from repro.robustness.analysis import bootstrap_robustness, convergence_profile
from repro.schedule.schedule import Schedule


@pytest.fixture
def uncertain_schedule(uncertain_diamond):
    return Schedule(uncertain_diamond, [[0, 1], [2, 3]])


class TestBootstrapRobustness:
    @pytest.fixture(scope="class")
    def sample(self):
        rng = np.random.default_rng(0)
        return 100.0 + rng.uniform(-10, 30, 500)

    def test_estimates_inside_intervals(self, sample):
        cis = bootstrap_robustness(sample, 100.0, rng=1)
        for name, ci in cis.items():
            assert ci.lower <= ci.estimate <= ci.upper, name

    def test_keys_complete(self, sample):
        cis = bootstrap_robustness(sample, 100.0, rng=2)
        assert set(cis) == {"r1", "r2", "miss_rate", "mean_tardiness"}

    def test_confidence_controls_width(self, sample):
        narrow = bootstrap_robustness(sample, 100.0, confidence=0.5, rng=3)
        wide = bootstrap_robustness(sample, 100.0, confidence=0.99, rng=3)
        assert wide["miss_rate"].width >= narrow["miss_rate"].width

    def test_more_data_tightens_interval(self):
        rng = np.random.default_rng(4)
        small = 100.0 + rng.uniform(-10, 30, 50)
        large = 100.0 + rng.uniform(-10, 30, 5000)
        ci_small = bootstrap_robustness(small, 100.0, rng=5)["mean_tardiness"]
        ci_large = bootstrap_robustness(large, 100.0, rng=5)["mean_tardiness"]
        assert ci_large.width < ci_small.width

    def test_never_tardy_gives_inf(self):
        sample = np.full(100, 50.0)  # always below expectation
        cis = bootstrap_robustness(sample, 100.0, rng=6)
        assert cis["r1"].estimate == np.inf
        assert cis["r2"].estimate == np.inf

    def test_validation(self, sample):
        with pytest.raises(ValueError):
            bootstrap_robustness(np.array([1.0]), 100.0)
        with pytest.raises(ValueError):
            bootstrap_robustness(sample, 100.0, confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_robustness(sample, 100.0, n_boot=2)

    def test_reproducible(self, sample):
        a = bootstrap_robustness(sample, 100.0, rng=9)
        b = bootstrap_robustness(sample, 100.0, rng=9)
        assert a["r1"].lower == b["r1"].lower


class TestConvergenceProfile:
    def test_nested_sizes(self, uncertain_schedule):
        profile = convergence_profile(uncertain_schedule, (50, 100, 200), rng=0)
        assert sorted(profile) == [50, 100, 200]
        for metrics in profile.values():
            assert set(metrics) == {
                "mean_makespan",
                "mean_tardiness",
                "miss_rate",
                "r1",
                "r2",
            }

    def test_nested_samples_share_prefix(self, uncertain_schedule):
        """Same rng: the N=50 estimate is the prefix of the N=200 run."""
        a = convergence_profile(uncertain_schedule, (50,), rng=1)
        b = convergence_profile(uncertain_schedule, (50, 200), rng=1)
        assert a[50]["mean_makespan"] == b[50]["mean_makespan"]

    def test_estimates_converge(self, uncertain_schedule):
        profile = convergence_profile(
            uncertain_schedule, (100, 5000, 20000), rng=2
        )
        # Larger samples approach the biggest sample's estimate.
        big = profile[20000]["mean_tardiness"]
        err_small = abs(profile[100]["mean_tardiness"] - big)
        err_mid = abs(profile[5000]["mean_tardiness"] - big)
        assert err_mid <= err_small + 1e-12

    def test_rejects_bad_sizes(self, uncertain_schedule):
        with pytest.raises(ValueError):
            convergence_profile(uncertain_schedule, ())
        with pytest.raises(ValueError):
            convergence_profile(uncertain_schedule, (0, 10))
