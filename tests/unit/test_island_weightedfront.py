"""Unit tests for the island-model GA and the weighted-sum front tracer."""

import numpy as np
import pytest

from repro.ga.engine import GAParams
from repro.ga.fitness import SlackFitness
from repro.ga.island import IslandGeneticScheduler, IslandParams
from repro.moop.weighted_front import weighted_sum_front
from repro.schedule.evaluation import evaluate
from tests.conftest import make_random_problem


class TestIslandParams:
    @pytest.mark.parametrize(
        "kwargs",
        [{"n_islands": 1}, {"epoch_generations": 0}, {"epochs": 0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            IslandParams(**kwargs)


class TestIslandGeneticScheduler:
    @pytest.fixture(scope="class")
    def run_result(self):
        problem = make_random_problem(7, n=14, m=3)
        scheduler = IslandGeneticScheduler(
            SlackFitness(),
            GAParams(population_size=8, max_iterations=20),
            IslandParams(n_islands=3, epoch_generations=10, epochs=3),
            rng=0,
        )
        return problem, scheduler.run(problem)

    def test_result_structure(self, run_result):
        _, result = run_result
        assert result.epochs == 3
        assert len(result.island_bests) == 3
        assert result.best.best_fitness == max(result.island_bests)

    def test_best_schedule_valid(self, run_result):
        problem, result = run_result
        ev = evaluate(result.schedule)
        assert ev.makespan > 0
        assert np.isclose(ev.avg_slack, result.best.best.avg_slack)

    def test_reproducible(self):
        problem = make_random_problem(8, n=10, m=2)
        def once():
            return IslandGeneticScheduler(
                SlackFitness(),
                GAParams(population_size=6, max_iterations=10),
                IslandParams(n_islands=2, epoch_generations=5, epochs=2),
                rng=42,
            ).run(problem)

        a, b = once(), once()
        assert a.best.best_fitness == b.best.best_fitness
        assert a.island_bests == b.island_bests

    def test_cluster_run_matches_serial(self):
        """Islands as cluster tasks (migrants via the scheduler) produce
        bit-identical results to the in-process epoch loop."""
        problem = make_random_problem(9, n=12, m=2)

        def scheduler():
            return IslandGeneticScheduler(
                SlackFitness(),
                GAParams(population_size=6, max_iterations=10),
                IslandParams(n_islands=2, epoch_generations=5, epochs=2),
                rng=42,
            )

        serial = scheduler().run(problem)
        parallel = scheduler().run(problem, n_jobs=2)
        assert serial.island_bests == parallel.island_bests
        assert serial.best.best_fitness == parallel.best.best_fitness
        assert np.array_equal(
            serial.schedule.proc_of, parallel.schedule.proc_of
        )

    def test_rejects_bad_n_jobs(self):
        problem = make_random_problem(9, n=10, m=2)
        with pytest.raises(ValueError, match="n_jobs"):
            IslandGeneticScheduler(
                SlackFitness(),
                GAParams(population_size=6, max_iterations=10),
                IslandParams(n_islands=2, epoch_generations=5, epochs=1),
                rng=1,
            ).run(problem, n_jobs=0)

    def test_competitive_with_single_population(self):
        """At a comparable total budget the island model should land within
        a reasonable factor of the single-population GA (it is a diversity
        mechanism, not a magic accelerator)."""
        from repro.ga.engine import GeneticScheduler

        problem = make_random_problem(9, n=14, m=3)
        island = IslandGeneticScheduler(
            SlackFitness(),
            GAParams(population_size=10, max_iterations=20),
            IslandParams(n_islands=3, epoch_generations=20, epochs=2),
            rng=1,
        ).run(problem)
        single = GeneticScheduler(
            SlackFitness(),
            GAParams(population_size=10, max_iterations=120, stagnation_limit=120),
            rng=1,
        ).run(problem)
        assert island.best.best_fitness >= 0.5 * single.best_fitness

    def test_scheduler_facade(self):
        problem = make_random_problem(10, n=8, m=2)
        s = IslandGeneticScheduler(
            SlackFitness(),
            GAParams(population_size=6, max_iterations=5),
            IslandParams(n_islands=2, epoch_generations=3, epochs=1),
            rng=2,
        ).schedule(problem)
        assert evaluate(s).makespan > 0


class TestWeightedSumFront:
    @pytest.fixture(scope="class")
    def front(self):
        problem = make_random_problem(11, n=12, m=3, mean_ul=3.0)
        params = GAParams(max_iterations=30, stagnation_limit=15)
        return problem, weighted_sum_front(
            problem, (1.0, 0.5, 0.0), params=params, rng=0
        )

    def test_front_shape(self, front):
        _, result = front
        assert len(result.schedules) >= 1
        assert np.all(np.diff(result.makespans) >= 0)
        assert np.all(np.diff(result.slacks) >= 0)

    def test_members_consistent(self, front):
        _, result = front
        for schedule, mk, sl in zip(result.schedules, result.makespans, result.slacks):
            ev = evaluate(schedule)
            assert np.isclose(ev.makespan, mk)
            assert np.isclose(ev.avg_slack, sl)

    def test_extreme_weights_order(self, front):
        """w=1 (makespan) solutions sit at the short end, w=0 (slack) at
        the long end — if both survived the dominance filter."""
        _, result = front
        if 1.0 in result.weights and 0.0 in result.weights:
            i1 = result.weights.index(1.0)
            i0 = result.weights.index(0.0)
            assert result.makespans[i1] <= result.makespans[i0]

    def test_rejects_empty_weights(self, front):
        problem, _ = front
        with pytest.raises(ValueError, match="non-empty"):
            weighted_sum_front(problem, ())

    def test_as_minimization_orientation(self, front):
        _, result = front
        as_min = result.as_minimization()
        assert np.allclose(as_min[:, 1], -result.slacks)
