"""Unit tests for the transfer-rate generator and GA diversity tracking."""

import numpy as np
import pytest

from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import SlackFitness
from repro.platform.platform import Platform
from repro.platform.trgen import generate_transfer_rates


class TestGenerateTransferRates:
    def test_shape_and_diagonal(self):
        tr = generate_transfer_rates(4, rng=0)
        assert tr.shape == (4, 4)
        assert np.all(np.diag(tr) == 1.0)

    def test_symmetric_default(self):
        tr = generate_transfer_rates(5, rng=1)
        assert np.allclose(tr, tr.T)

    def test_asymmetric_option(self):
        tr = generate_transfer_rates(5, rng=2, symmetric=False)
        off = ~np.eye(5, dtype=bool)
        assert not np.allclose(tr[off], tr.T[off])

    def test_positive_rates(self):
        tr = generate_transfer_rates(6, mean_rate=2.0, v_link=1.0, rng=3)
        assert np.all(tr > 0)

    def test_mean_tracks_target(self):
        tr = generate_transfer_rates(40, mean_rate=3.0, v_link=0.3, rng=4)
        off = ~np.eye(40, dtype=bool)
        assert abs(tr[off].mean() - 3.0) / 3.0 < 0.1

    def test_usable_by_platform(self):
        tr = generate_transfer_rates(3, rng=5)
        platform = Platform(3, tr)
        assert platform.comm_time(1.0, 0, 1) > 0
        assert platform.comm_time(1.0, 1, 1) == 0.0

    def test_single_processor(self):
        tr = generate_transfer_rates(1, rng=6)
        assert tr.shape == (1, 1)
        Platform(1, tr)  # must construct

    @pytest.mark.parametrize(
        "kwargs", [{"m": 0}, {"m": 3, "mean_rate": 0}, {"m": 3, "v_link": -1}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            generate_transfer_rates(**kwargs)

    def test_reproducible(self):
        a = generate_transfer_rates(4, rng=9)
        b = generate_transfer_rates(4, rng=9)
        assert np.array_equal(a, b)


class TestDiversityTracking:
    def test_diversity_recorded_per_generation(self, small_random_problem):
        engine = GeneticScheduler(
            SlackFitness(), GAParams(max_iterations=8), rng=0
        )
        result = engine.run(small_random_problem)
        div = result.history.diversity
        assert len(div) == len(result.history)
        assert all(0.0 < d <= 1.0 for d in div)

    def test_initial_population_fully_diverse(self, small_random_problem):
        """Uniqueness check (Sec. 4.2.2): generation 0 diversity is 1.0."""
        engine = GeneticScheduler(
            SlackFitness(), GAParams(max_iterations=2), rng=1
        )
        result = engine.run(small_random_problem)
        assert result.history.diversity[0] == 1.0

    def test_tiny_search_space_collapses(self, single_task_problem):
        """On a 1-task/2-proc problem only 2 chromosomes exist, so the
        population (size 5) cannot stay fully diverse."""
        engine = GeneticScheduler(
            SlackFitness(),
            GAParams(population_size=5, max_iterations=3),
            rng=2,
        )
        result = engine.run(single_task_problem)
        assert result.history.diversity[-1] <= 2 / 5
