"""Unit tests for repro.stream: workload, policies, scheduler, metrics."""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.obs import runtime
from repro.obs.sinks import InMemorySink
from repro.stream import (
    DEFER,
    DROP,
    RUN,
    DroppingPolicy,
    NoShedding,
    PruningPolicy,
    StreamParams,
    build_workload,
    make_policy,
    run_stream,
    single_job_workload,
    with_load,
)


def _tiny(load=1.5, **overrides) -> StreamParams:
    """A small-but-real stream: quick to build, still contended."""
    defaults = dict(n_jobs=8, tasks=8, m=2, load=load, seed=5)
    defaults.update(overrides)
    return StreamParams(**defaults)


class TestStreamParams:
    def test_defaults_are_valid(self):
        params = StreamParams()
        assert params.n_jobs == 40
        assert params.arrival == "poisson"

    @pytest.mark.parametrize(
        "field, value",
        [
            ("n_jobs", 0),
            ("tasks", 0),
            ("m", 0),
            ("mean_ul", 0.5),
            ("load", 0.0),
            ("load", -1.0),
            ("arrival", "uniform"),
            ("burstiness", 1.0),
            ("phase_jobs", 0.0),
            ("deadline_factor", 0.0),
        ],
    )
    def test_rejects_bad_fields(self, field, value):
        with pytest.raises(ValueError, match=field.replace("_", ".")):
            StreamParams(**{field: value})


class TestWorkload:
    def test_same_seed_same_world(self):
        a = build_workload(_tiny())
        b = build_workload(_tiny())
        for ja, jb in zip(a.jobs, b.jobs):
            assert ja.arrival == jb.arrival
            assert ja.deadline == jb.deadline
            assert np.array_equal(ja.durations, jb.durations)
        assert a.arrival_rate == b.arrival_rate

    def test_load_changes_only_the_arrivals(self):
        light = build_workload(_tiny(load=0.5))
        heavy = build_workload(_tiny(load=2.0))
        for jl, jh in zip(light.jobs, heavy.jobs):
            assert np.array_equal(jl.durations, jh.durations)
            assert jl.expected_makespan == jh.expected_makespan
            assert jl.work == jh.work
        # 4x the load compresses the mean arrival gap 4x.
        assert heavy.arrival_rate == pytest.approx(4 * light.arrival_rate)

    def test_with_load_matches_fresh_build(self):
        rebuilt = build_workload(_tiny(load=2.0))
        respaced = with_load(build_workload(_tiny(load=0.5)), 2.0)
        assert respaced.params == rebuilt.params
        for ja, jb in zip(respaced.jobs, rebuilt.jobs):
            assert ja.arrival == jb.arrival
            assert ja.deadline == jb.deadline
            assert np.array_equal(ja.durations, jb.durations)

    def test_load_calibration(self):
        workload = build_workload(_tiny(load=1.5))
        # rate = load * m / mean(work), by construction.
        assert workload.arrival_rate == pytest.approx(
            1.5 * workload.m / workload.mean_work
        )

    @pytest.mark.parametrize("arrival", ["poisson", "mmpp"])
    def test_arrivals_sorted_and_positive(self, arrival):
        workload = build_workload(_tiny(arrival=arrival, n_jobs=12))
        arrivals = [job.arrival for job in workload.jobs]
        assert all(a > 0.0 for a in arrivals)
        assert arrivals == sorted(arrivals)

    def test_deadline_prices_isolated_makespan(self):
        workload = build_workload(_tiny(deadline_factor=2.5))
        for job in workload.jobs:
            assert job.deadline == pytest.approx(
                job.arrival + 2.5 * job.expected_makespan
            )

    def test_klass_splits_around_the_median(self):
        workload = build_workload(_tiny(n_jobs=9))
        works = sorted(job.work for job in workload.jobs)
        median = works[len(works) // 2]
        for job in workload.jobs:
            assert job.klass == ("short" if job.work <= median else "long")
        assert {job.klass for job in workload.jobs} == {"short", "long"}

    def test_single_job_workload_validation(self, small_random_problem):
        with pytest.raises(ValueError, match="arrival"):
            single_job_workload(small_random_problem, arrival=-1.0)
        with pytest.raises(ValueError, match="deadline_factor"):
            single_job_workload(small_random_problem, deadline_factor=0.0)


class TestPolicies:
    def test_registry(self):
        assert isinstance(make_policy("none"), NoShedding)
        assert isinstance(make_policy("prune"), PruningPolicy)
        assert isinstance(make_policy("drop"), DroppingPolicy)
        assert make_policy("prune", threshold=0.5).threshold == 0.5
        with pytest.raises(ValueError, match="unknown shedding policy"):
            make_policy("lottery")
        with pytest.raises(TypeError, match="takes no options"):
            make_policy("none", threshold=0.5)

    def test_no_shedding_always_runs(self):
        policy = NoShedding()
        assert policy.name == "none"
        assert policy.admit(None, 0.0)
        assert policy.dispatch(None, 0, 0.0, 0.0) == RUN

    def test_pruning_thresholds(self):
        policy = PruningPolicy(threshold=0.3)
        assert policy.name == "prune"
        assert policy.dispatch(None, 0, 0.31, 0.0) == RUN
        assert policy.dispatch(None, 0, 0.29, 0.0) == DROP
        assert policy.admit(None, 0.31)
        assert not policy.admit(None, 0.29)
        with pytest.raises(ValueError, match="threshold"):
            PruningPolicy(threshold=1.5)

    def test_dropping_bands(self):
        job = _FakeJob("short")
        policy = DroppingPolicy(drop_below=0.1, defer_below=0.4, fairness=0.0)
        assert policy.name == "drop"
        assert policy.dispatch(job, 0, 0.5, 0.0) == RUN
        assert policy.dispatch(job, 0, 0.2, 0.0) == DEFER
        assert policy.dispatch(job, 0, 0.05, 0.0) == DROP
        # Admission only rejects the hopeless.
        assert policy.admit(job, 0.01)
        assert not policy.admit(job, 0.0)

    def test_dropping_validation(self):
        with pytest.raises(ValueError, match="drop_below"):
            DroppingPolicy(drop_below=-0.1)
        with pytest.raises(ValueError, match="defer_below"):
            DroppingPolicy(drop_below=0.5, defer_below=0.4)
        with pytest.raises(ValueError, match="fairness"):
            DroppingPolicy(fairness=2.0)

    def test_fairness_lowers_the_floor_for_over_dropped_classes(self):
        policy = DroppingPolicy(drop_below=0.2, defer_below=0.4, fairness=1.0)
        short, long = _FakeJob("short"), _FakeJob("long")
        for job in (short, short, long, long):
            policy.admit(job, 0.5)
        # Both drops landed on "long": its floor must fall below 0.2
        # while "short" keeps the nominal floor.
        policy.record_outcome(long, "dropped")
        policy.record_outcome(long, "dropped")
        assert policy._drop_floor("short") == pytest.approx(0.2)
        assert policy._drop_floor("long") < 0.2
        # A probability between the two floors is dropped for the
        # favoured class but only deferred for the over-dropped one.
        p = (policy._drop_floor("long") + 0.2) / 2
        assert policy.dispatch(short, 0, p, 0.0) == DROP
        assert policy.dispatch(long, 0, p, 0.0) == DEFER

    def test_fairness_zero_is_class_blind(self):
        policy = DroppingPolicy(drop_below=0.2, fairness=0.0)
        long = _FakeJob("long")
        policy.admit(long, 0.5)
        policy.record_outcome(long, "dropped")
        assert policy._drop_floor("long") == 0.2
        assert policy._drop_floor("short") == 0.2


class _FakeJob:
    """The only policy-visible field the tests need."""

    def __init__(self, klass: str) -> None:
        self.klass = klass


class TestRunStream:
    def test_no_shedding_partitions_outcomes(self):
        workload = build_workload(_tiny())
        result = run_stream(workload)
        assert result.policy == "none"
        assert result.n_on_time + result.n_late == result.n_jobs
        assert result.n_dropped == result.n_rejected == 0
        assert result.drop_set == ()
        assert all(o.status in ("on-time", "late") for o in result.outcomes)
        assert all(math.isfinite(o.finish) for o in result.outcomes)
        assert all(
            o.n_done == j.n for o, j in zip(result.outcomes, workload.jobs)
        )

    def test_metrics_are_well_formed(self):
        result = run_stream(build_workload(_tiny(load=2.0)), make_policy("prune"))
        assert 0.0 <= result.on_time_rate <= 1.0
        assert result.miss_rate == pytest.approx(1.0 - result.on_time_rate)
        assert result.goodput >= 0.0
        assert 0.0 <= result.utilization <= 1.0 + 1e-12
        assert result.horizon > 0.0
        assert (
            result.n_on_time + result.n_late + result.n_dropped + result.n_rejected
            == result.n_jobs
        )
        # Shed jobs carry a NaN finish and drop out of the response mean.
        for outcome in result.outcomes:
            if outcome.status in ("dropped", "rejected"):
                assert math.isnan(outcome.finish)
                assert math.isnan(outcome.response)

    def test_goodput_counts_only_on_time_work(self):
        result = run_stream(build_workload(_tiny(load=2.0)), make_policy("prune"))
        won = sum(o.work for o in result.outcomes if o.status == "on-time")
        assert result.goodput == pytest.approx(won / result.horizon)

    def test_same_workload_same_result(self):
        workload = build_workload(_tiny(load=2.0))
        a = run_stream(workload, make_policy("drop"))
        b = run_stream(workload, make_policy("drop"))
        assert a.drop_set == b.drop_set
        assert a.horizon == b.horizon
        assert a.busy_time == b.busy_time
        for oa, ob in zip(a.outcomes, b.outcomes):
            assert oa.status == ob.status
            assert oa.finish == ob.finish or (
                math.isnan(oa.finish) and math.isnan(ob.finish)
            )

    def test_pruning_sheds_under_heavy_load(self):
        workload = build_workload(_tiny(load=4.0))
        none = run_stream(workload)
        prune = run_stream(workload, make_policy("prune"))
        assert prune.n_dropped + prune.n_rejected > 0
        assert prune.drop_set != ()
        # Every pruned job's work is excluded from goodput but its
        # started tasks still show up in busy_time: never negative.
        assert prune.busy_time <= none.busy_time + 1e-9

    def test_obs_counters_and_spans(self):
        workload = build_workload(_tiny(load=3.0))
        session = runtime.enable(InMemorySink())
        try:
            result = run_stream(workload, make_policy("prune"))
            sink = session.sink
            counters = session.registry.counters
            assert counters["stream.arrivals"].value == workload.n_jobs
            assert counters["stream.completions"].value == (
                result.n_on_time + result.n_late
            )
            shed = counters["stream.prunes"].value + (
                counters["stream.rejections"].value
                if "stream.rejections" in counters
                else 0
            )
            assert shed == result.n_dropped + result.n_rejected
            run_spans = sink.spans("stream.run")
            assert len(run_spans) == 1
            assert run_spans[0]["attrs"]["policy"] == "prune"
            assert run_spans[0]["attrs"]["load"] == 3.0
            # One dispatch span per committed task.
            n_committed = sum(o.n_done for o in result.outcomes)
            assert len(sink.spans("stream.dispatch")) == n_committed
            gauges = session.registry.gauges
            assert gauges["stream.load"].value == 3.0
            assert gauges["stream.on_time_rate"].value == pytest.approx(
                result.on_time_rate
            )
        finally:
            runtime.disable()

    def test_drop_counter_named_after_the_dropping_policy(self):
        workload = build_workload(_tiny(load=4.0))
        session = runtime.enable(InMemorySink())
        try:
            result = run_stream(workload, make_policy("drop"))
            counters = session.registry.counters
            assert "stream.prunes" not in counters
            if result.n_dropped:
                assert counters["stream.drops"].value == result.n_dropped
        finally:
            runtime.disable()
