"""Unit tests for GA fitness policies (Eqn. 8 in particular)."""

import numpy as np
import pytest

from repro.ga.fitness import (
    EpsilonConstraintFitness,
    Individual,
    MakespanFitness,
    SlackFitness,
    quantile_duration_matrix,
)


def _ind(makespan: float, slack: float) -> Individual:
    """Metric-only stub: fitness policies never touch chromosome/schedule."""
    return Individual(chromosome=None, schedule=None, makespan=makespan, avg_slack=slack)


class TestSingleObjectivePolicies:
    def test_makespan_ordering(self):
        pop = [_ind(10.0, 1.0), _ind(5.0, 0.0), _ind(20.0, 9.0)]
        scores = MakespanFitness().scores(pop)
        assert np.argmax(scores) == 1  # smallest makespan wins
        assert np.allclose(scores, [0.1, 0.2, 0.05])

    def test_slack_ordering(self):
        pop = [_ind(10.0, 1.0), _ind(5.0, 0.0), _ind(20.0, 9.0)]
        scores = SlackFitness().scores(pop)
        assert np.argmax(scores) == 2
        assert np.allclose(scores, [1.0, 0.0, 9.0])


class TestEpsilonConstraintFitness:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EpsilonConstraintFitness(0.0, 100.0)
        with pytest.raises(ValueError):
            EpsilonConstraintFitness(1.0, -5.0)

    def test_bound(self):
        fit = EpsilonConstraintFitness(1.5, 100.0)
        assert fit.bound == 150.0
        assert fit.is_feasible(150.0)
        assert not fit.is_feasible(150.1)

    def test_feasible_scored_by_slack(self):
        fit = EpsilonConstraintFitness(1.0, 100.0)
        pop = [_ind(90.0, 3.0), _ind(100.0, 7.0)]
        assert np.allclose(fit.scores(pop), [3.0, 7.0])

    def test_infeasible_penalized_below_feasible(self):
        fit = EpsilonConstraintFitness(1.0, 100.0)
        pop = [_ind(90.0, 3.0), _ind(120.0, 50.0), _ind(100.0, 7.0)]
        scores = fit.scores(pop)
        # Eqn. 8: min feasible fitness (3.0) * bound/M0 = 3 * 100/120 = 2.5.
        assert np.isclose(scores[1], 2.5)
        assert scores[1] < scores[0] < scores[2]

    def test_worse_violation_penalized_more(self):
        fit = EpsilonConstraintFitness(1.0, 100.0)
        pop = [_ind(90.0, 3.0), _ind(120.0, 50.0), _ind(200.0, 99.0)]
        scores = fit.scores(pop)
        assert scores[1] > scores[2]

    def test_no_feasible_individuals(self):
        fit = EpsilonConstraintFitness(1.0, 100.0)
        pop = [_ind(120.0, 5.0), _ind(150.0, 9.0)]
        scores = fit.scores(pop)
        assert np.all(scores < 0)  # below any feasible slack (>= 0)
        assert scores[0] > scores[1]  # closer to feasibility scores higher

    def test_zero_min_feasible_slack_keeps_dominance(self):
        fit = EpsilonConstraintFitness(1.0, 100.0)
        pop = [_ind(100.0, 0.0), _ind(120.0, 50.0), _ind(150.0, 70.0)]
        scores = fit.scores(pop)
        assert scores[0] > scores[1] > scores[2]
        assert scores[1] < 0

    def test_boundary_feasible_inclusive(self):
        fit = EpsilonConstraintFitness(1.0, 100.0)
        pop = [_ind(100.0, 4.0)]
        assert np.allclose(fit.scores(pop), [4.0])

    def test_all_feasible_is_pure_slack(self):
        fit = EpsilonConstraintFitness(2.0, 100.0)
        pop = [_ind(150.0, 1.0), _ind(180.0, 2.0)]
        assert np.allclose(fit.scores(pop), [1.0, 2.0])

    def test_for_problem_factory(self, small_random_problem):
        fit = EpsilonConstraintFitness.for_problem(small_random_problem, 1.3)
        from repro.heuristics.heft import HeftScheduler
        from repro.schedule.evaluation import expected_makespan

        m = expected_makespan(HeftScheduler().schedule(small_random_problem))
        assert np.isclose(fit.bound, 1.3 * m)


class TestQuantileDurations:
    def test_median_equals_expectation(self, uncertain_diamond):
        q = quantile_duration_matrix(uncertain_diamond, 0.5)
        assert np.allclose(q, uncertain_diamond.expected_times)

    def test_pessimism_increases(self, uncertain_diamond):
        q9 = quantile_duration_matrix(uncertain_diamond, 0.9)
        q5 = quantile_duration_matrix(uncertain_diamond, 0.5)
        assert np.all(q9 >= q5)
