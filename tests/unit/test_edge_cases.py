"""Edge-case and stress tests across the whole stack.

Adversarial instance shapes: pure chains (no parallelism), fully
independent tasks (no precedence), zero communication, extreme
communication, single processor, many processors vs few tasks, extreme
uncertainty levels.
"""

import numpy as np
import pytest

import repro
from repro.core.problem import SchedulingProblem
from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import SlackFitness
from repro.graph.taskgraph import TaskGraph
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel
from repro.schedule.evaluation import evaluate
from repro.sim import simulate

ALL_SCHEDULERS = [
    repro.HeftScheduler(),
    repro.CpopScheduler(),
    repro.PeftScheduler(),
    repro.MinMinScheduler(),
    repro.QuantileHeftScheduler(0.9),
]


def _problem(graph: TaskGraph, m: int = 3, seed: int = 0, ul: float = 2.0):
    rng = np.random.default_rng(seed)
    bcet = rng.uniform(1.0, 10.0, size=(graph.n, m))
    return SchedulingProblem(
        graph=graph,
        platform=Platform(m),
        uncertainty=UncertaintyModel(bcet, np.full((graph.n, m), ul)),
    )


class TestChainGraph:
    """A pure chain: zero parallelism, every task critical."""

    @pytest.fixture
    def chain(self):
        n = 12
        graph = TaskGraph(n, [(i, i + 1) for i in range(n - 1)], name="chain12")
        return _problem(graph)

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
    def test_schedulers_handle_chain(self, chain, scheduler):
        s = scheduler.schedule(chain)
        ev = evaluate(s)
        assert ev.makespan > 0

    def test_single_proc_chain_all_critical(self, chain):
        from repro.schedule.schedule import Schedule

        s = Schedule(chain, [list(range(12)), [], []])
        ev = evaluate(s)
        assert np.allclose(ev.slacks, 0.0)
        assert ev.avg_slack == pytest.approx(0.0, abs=1e-9)

    def test_ga_on_zero_slack_landscape(self, chain):
        """Slack-GA on a chain: every same-proc schedule has zero slack;
        the GA must survive a flat fitness landscape."""
        engine = GeneticScheduler(
            SlackFitness(), GAParams(max_iterations=15, population_size=8), rng=0
        )
        result = engine.run(chain)
        assert result.best.avg_slack >= 0.0


class TestIndependentTasks:
    """No precedence at all: scheduling is pure load balancing."""

    @pytest.fixture
    def independent(self):
        return _problem(TaskGraph(10, [], name="indep10"), m=4, seed=1)

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
    def test_schedulers_spread_load(self, independent, scheduler):
        s = scheduler.schedule(independent)
        used = sum(1 for tasks in s.proc_orders if len(tasks) > 0)
        assert used >= 2  # no sane scheduler serializes independent tasks

    def test_makespan_at_least_max_min_time(self, independent):
        s = repro.HeftScheduler().schedule(independent)
        lower = independent.expected_times.min(axis=1).max()
        assert evaluate(s).makespan >= lower - 1e-9


class TestExtremeCommunication:
    def test_huge_comm_forces_colocation(self):
        """With enormous transfer costs, HEFT should co-locate the chain."""
        graph = TaskGraph(3, [(0, 1), (1, 2)], [1e6, 1e6], name="heavy-comm")
        problem = _problem(graph, m=3, seed=2)
        s = repro.HeftScheduler().schedule(problem)
        assert len(set(int(p) for p in s.proc_of)) == 1

    def test_zero_comm_graph(self):
        graph = TaskGraph(6, [(0, 2), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)])
        problem = _problem(graph, m=2, seed=3)
        s = repro.HeftScheduler().schedule(problem)
        assert np.all(s.comm_weights == 0.0)
        assert np.isclose(simulate(s).makespan, evaluate(s).makespan)


class TestDegenerateShapes:
    def test_more_processors_than_tasks(self):
        problem = _problem(TaskGraph(2, [(0, 1)]), m=8, seed=4)
        for scheduler in ALL_SCHEDULERS:
            s = scheduler.schedule(problem)
            assert evaluate(s).makespan > 0

    def test_single_processor_everything(self):
        problem = _problem(TaskGraph(6, [(0, 1), (1, 2)]), m=1, seed=5)
        s = repro.HeftScheduler().schedule(problem)
        # Single processor: makespan is at least the sum of all times.
        assert evaluate(s).makespan >= problem.expected_times.sum() - 1e-9

    def test_extreme_uncertainty(self):
        problem = _problem(TaskGraph(5, [(0, 4), (1, 4), (2, 4), (3, 4)]), ul=50.0)
        s = repro.HeftScheduler().schedule(problem)
        report = repro.assess_robustness(s, 300, rng=0)
        # Wild uncertainty: realized makespans spread over a huge range but
        # all metrics remain finite and well-formed.
        assert np.isfinite(report.mean_makespan)
        assert report.mean_tardiness >= 0
        assert 0 <= report.miss_rate <= 1

    def test_ul_exactly_one_everywhere(self):
        problem = _problem(TaskGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)]), ul=1.0)
        s = repro.HeftScheduler().schedule(problem)
        report = repro.assess_robustness(s, 100, rng=1)
        assert report.miss_rate == 0.0
        assert np.allclose(report.realized_makespans, report.expected_makespan)

    def test_wide_fanout(self):
        """One source feeding 40 children (scheduling-string stress)."""
        n = 41
        graph = TaskGraph(n, [(0, i) for i in range(1, n)], name="star")
        problem = _problem(graph, m=4, seed=6)
        result = repro.RobustScheduler(
            epsilon=1.2, params=GAParams(max_iterations=20), rng=0
        ).solve(problem)
        assert result.feasible


class TestNumericalRobustness:
    def test_tiny_durations(self):
        graph = TaskGraph(4, [(0, 1), (1, 2), (2, 3)])
        times = np.full((4, 2), 1e-12)
        problem = SchedulingProblem.deterministic(graph, times)
        s = repro.HeftScheduler().schedule(problem)
        ev = evaluate(s)
        assert ev.makespan > 0
        assert np.all(ev.slacks >= 0)

    def test_huge_durations(self):
        graph = TaskGraph(4, [(0, 1), (1, 2), (2, 3)])
        times = np.full((4, 2), 1e12)
        problem = SchedulingProblem.deterministic(graph, times)
        s = repro.HeftScheduler().schedule(problem)
        assert np.isfinite(evaluate(s).makespan)

    def test_mixed_magnitudes(self):
        graph = TaskGraph(3, [(0, 1), (1, 2)], [1e-9, 1e9])
        times = np.array([[1e-6, 1e6], [1e6, 1e-6], [1.0, 1.0]])
        problem = SchedulingProblem.deterministic(graph, times)
        s = repro.HeftScheduler().schedule(problem)
        assert np.isclose(simulate(s).makespan, evaluate(s).makespan)
