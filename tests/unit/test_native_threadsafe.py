"""Thread safety of the native kernel's first-compile path.

The service's fast tier evaluates on a thread pool, so the very first
``get_lib()`` calls of a process can race: two threads may reach the
compile-and-load path simultaneously.  :mod:`repro.graph._native` guards
this with a process-wide lock and a double-checked ``_tried`` flag that
is published *last*, so racing readers of the lock-free fast path never
observe a half-built library.  These tests reset the module state and
re-run the race for real.
"""

from __future__ import annotations

import shutil
import threading

import pytest

from repro.graph import _native


@pytest.fixture
def fresh_native_state(monkeypatch, tmp_path):
    """Reset the module to its pre-first-call state, compile cache cleared.

    The compiled-object cache is redirected to a fresh temp dir so the
    race exercises the actual compile, not a warm ``dlopen``.  monkeypatch
    restores ``_lib``/``_tried`` afterwards, so the rest of the suite
    keeps its already-loaded library.
    """
    # These tests are about the compile path itself, so they must run it
    # even when the surrounding suite opted out (REPRO_NATIVE=0 legs).
    monkeypatch.delenv("REPRO_NATIVE", raising=False)
    monkeypatch.setenv("TMPDIR", str(tmp_path))
    # tempfile.gettempdir() caches its answer per process; point the
    # resolved value at the fresh dir directly.
    import tempfile

    monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
    monkeypatch.setattr(_native, "_lib", None)
    monkeypatch.setattr(_native, "_tried", False)
    yield tmp_path
    shutil.rmtree(tmp_path, ignore_errors=True)


def test_two_threads_racing_first_compile(fresh_native_state):
    """Both racers get the same (fully initialised) library object."""
    n_threads = 2
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def racer(i: int) -> None:
        try:
            barrier.wait(timeout=30)
            results[i] = _native.get_lib()
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=racer, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors
    assert all(not t.is_alive() for t in threads)

    # Exactly one outcome, shared by both threads — either both got the
    # same CDLL instance or both saw the (no-compiler) fallback None.
    assert results[0] is results[1]
    if results[0] is not None:
        # The published library is complete: every symbol the Python side
        # binds is present and callable metadata is set.
        assert results[0].has_openmp() in (0, 1)


def test_compile_failure_published_once(fresh_native_state, monkeypatch):
    """A failed compile publishes None and is never retried."""
    calls: list[int] = []

    def failing_load():
        calls.append(1)
        raise RuntimeError("simulated compile failure")

    monkeypatch.setattr(_native, "_load", failing_load)
    assert _native.get_lib() is None
    assert _native.get_lib() is None
    assert len(calls) == 1


def test_opt_out_env_never_compiles(fresh_native_state, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "0")

    def exploding_load():  # pragma: no cover - must not run
        raise AssertionError("REPRO_NATIVE=0 must not reach _load")

    monkeypatch.setattr(_native, "_load", exploding_load)
    assert _native.get_lib() is None
