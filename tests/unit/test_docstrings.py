"""Documentation gate: every public item in :mod:`repro` has a docstring.

Walks the package, imports every module, and checks that all public
modules, classes, functions and methods carry non-empty docstrings —
deliverable-level documentation is enforced, not aspirational.
"""

import importlib
import inspect
import pkgutil

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        # Only report items defined in this package (not numpy etc.).
        mod = getattr(obj, "__module__", None)
        if mod is None or not mod.startswith("repro"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield f"{module.__name__}.{name}", obj


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_docstring():
    missing = []
    for module in _iter_modules():
        for qualname, obj in _public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append(qualname)
    assert not missing, f"public items without docstrings: {sorted(set(missing))}"


def test_every_public_method_has_docstring():
    missing = []
    seen: set[type] = set()
    for module in _iter_modules():
        for qualname, obj in _public_members(module):
            if not inspect.isclass(obj) or obj in seen:
                continue
            seen.add(obj)
            for name, member in vars(obj).items():
                if name.startswith("_") and name != "__init__":
                    continue
                if inspect.isfunction(member):
                    doc = (member.__doc__ or "").strip()
                    # __init__ may document via the class docstring.
                    if name == "__init__":
                        continue
                    if not doc:
                        missing.append(f"{qualname}.{name}")
                elif isinstance(member, property):
                    if not (member.fget.__doc__ or "").strip():
                        missing.append(f"{qualname}.{name} (property)")
    assert not missing, f"public methods without docstrings: {sorted(set(missing))}"
