"""Unit tests for repro.service.sharding: the ring and the steal policy.

Routing determinism is a correctness property of the sharded service
(per-shard caches and coalescing assume a fingerprint has one home), so
these tests pin the ring's stability under membership change as well as
the exact conditions under which work stealing may override it.
"""

from __future__ import annotations

import pytest

from repro.service.sharding import HashRing, choose_shard


def _nodes(n: int) -> list[str]:
    return [f"shard-{i}" for i in range(n)]


class TestHashRing:
    def test_same_key_same_node(self):
        ring = HashRing(_nodes(4))
        keys = [f"fingerprint-{i}" for i in range(100)]
        first = [ring.node_for(k) for k in keys]
        again = [HashRing(_nodes(4)).node_for(k) for k in keys]
        assert first == again  # depends only on ids, not instance

    def test_distribution_roughly_even(self):
        ring = HashRing(_nodes(4))
        counts: dict[str, int] = {}
        for i in range(2000):
            node = ring.node_for(f"key-{i}")
            counts[node] = counts.get(node, 0) + 1
        assert set(counts) == set(_nodes(4))
        assert min(counts.values()) > 2000 / 4 * 0.5

    def test_dead_node_moves_only_its_keys(self):
        ring = HashRing(_nodes(4))
        keys = [f"key-{i}" for i in range(500)]
        full = {k: ring.node_for(k) for k in keys}
        alive = [n for n in _nodes(4) if n != "shard-2"]
        for k in keys:
            rerouted = ring.node_for(k, alive=alive)
            if full[k] != "shard-2":
                assert rerouted == full[k]  # survivors keep their keys
            else:
                assert rerouted != "shard-2"

    def test_single_live_node_takes_everything(self):
        ring = HashRing(_nodes(3))
        assert ring.node_for("anything", alive=["shard-1"]) == "shard-1"

    def test_no_live_nodes_raises(self):
        ring = HashRing(_nodes(2))
        with pytest.raises(ValueError):
            ring.node_for("key", alive=[])

    @pytest.mark.parametrize(
        "bad",
        [
            {"node_ids": []},
            {"node_ids": ["a", "a"]},
            {"node_ids": ["a"], "replicas": 0},
        ],
    )
    def test_rejects_bad_construction(self, bad):
        with pytest.raises(ValueError):
            HashRing(**bad)


class TestChooseShard:
    def test_idle_cluster_routes_home(self):
        ring = HashRing(_nodes(4))
        inflight = {n: 0 for n in _nodes(4)}
        for i in range(50):
            decision = choose_shard(ring, f"fp-{i}", "ga", inflight)
            assert decision.node_id == decision.home == ring.node_for(f"fp-{i}")
            assert not decision.stolen and not decision.failover

    def test_deep_home_backlog_is_stolen(self):
        ring = HashRing(_nodes(2))
        home = ring.node_for("fp")
        other = next(n for n in _nodes(2) if n != home)
        decision = choose_shard(
            ring, "fp", "ga", {home: 3, other: 0}, steal_margin=2
        )
        assert decision.stolen
        assert decision.node_id == other
        assert decision.home == home

    def test_margin_not_met_stays_home(self):
        ring = HashRing(_nodes(2))
        home = ring.node_for("fp")
        other = next(n for n in _nodes(2) if n != home)
        decision = choose_shard(
            ring, "fp", "ga", {home: 1, other: 0}, steal_margin=2
        )
        assert decision.node_id == home and not decision.stolen

    def test_fast_tier_never_stolen(self):
        ring = HashRing(_nodes(2))
        home = ring.node_for("fp")
        other = next(n for n in _nodes(2) if n != home)
        decision = choose_shard(ring, "fp", "heft", {home: 99, other: 0})
        assert decision.node_id == home and not decision.stolen

    def test_dead_home_is_failover(self):
        ring = HashRing(_nodes(3))
        home = ring.node_for("fp")
        alive = {n: 0 for n in _nodes(3) if n != home}
        decision = choose_shard(ring, "fp", "ga", alive)
        assert decision.failover
        assert decision.node_id != home
        assert decision.node_id == ring.node_for("fp", alive=alive.keys())

    def test_steal_tie_break_is_deterministic(self):
        ring = HashRing(_nodes(3))
        home = ring.node_for("fp")
        inflight = {n: (5 if n == home else 0) for n in _nodes(3)}
        picks = {
            choose_shard(ring, "fp", "ga", inflight).node_id for _ in range(10)
        }
        assert len(picks) == 1  # equal-load candidates break ties by id
        assert picks.pop() == min(n for n in _nodes(3) if n != home)

    def test_bad_margin_rejected(self):
        ring = HashRing(_nodes(2))
        with pytest.raises(ValueError):
            choose_shard(ring, "fp", "ga", {"shard-0": 0}, steal_margin=0)
