"""Unit tests for the structured workflow generators."""

import numpy as np
import pytest

from repro.graph.analysis import dag_levels
from repro.graph.workflows import (
    fft,
    fork_join,
    gaussian_elimination,
    in_tree,
    laplace,
    out_tree,
    pipeline,
)


class TestGaussianElimination:
    def test_task_count(self):
        # (m^2 + m - 2) / 2 tasks.
        for m in (2, 3, 5, 8):
            g = gaussian_elimination(m)
            assert g.n == (m * m + m - 2) // 2

    def test_smallest_instance(self):
        g = gaussian_elimination(2)
        # One pivot feeding one update.
        assert g.n == 2
        assert list(g.edges()) == [(0, 1, 1.0)]

    def test_structure_m3(self):
        g = gaussian_elimination(3)
        # Tasks: T11, T12, T13, T22, T23 -> ids 0..4.
        assert g.n == 5
        assert g.has_edge(0, 1) and g.has_edge(0, 2)  # pivot 1 -> updates
        assert g.has_edge(1, 3)  # T12 -> T22 (next pivot)
        assert g.has_edge(2, 4)  # T13 -> T23
        assert g.has_edge(3, 4)  # pivot 2 -> its update

    def test_single_entry_single_exit(self):
        g = gaussian_elimination(6)
        assert g.entry_nodes.size == 1
        assert g.exit_nodes.size == 1

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            gaussian_elimination(1)


class TestFft:
    def test_task_count(self):
        # Call tree (p - 1) + butterflies p * (log2 p + 1).
        for p in (2, 4, 8):
            g = fft(p)
            import math

            levels = int(math.log2(p))
            assert g.n == (p - 1) + p * (levels + 1)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft(6)
        with pytest.raises(ValueError):
            fft(1)

    def test_single_entry(self):
        g = fft(8)
        assert g.entry_nodes.size == 1

    def test_exit_count_is_p(self):
        g = fft(4)
        assert g.exit_nodes.size == 4

    def test_butterfly_depth(self):
        g = fft(8)
        # Longest path: tree depth (log2 p - 1 edges) + leaf->row0 +
        # levels butterfly hops = 2 * log2(p) levels total.
        assert dag_levels(g).max() == 2 * 3


class TestForkJoin:
    def test_counts(self):
        g = fork_join(3, 4)
        assert g.n == 3 * (4 + 2)
        assert g.entry_nodes.size == 1
        assert g.exit_nodes.size == 1

    def test_stage_chaining(self):
        g = fork_join(2, 2)
        levels = dag_levels(g)
        assert levels.max() == 5  # fork,work,join,fork,work,join

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            fork_join(0, 2)


class TestPipeline:
    def test_counts(self):
        g = pipeline(4, 3)
        assert g.n == 12

    def test_stencil_dependencies(self):
        g = pipeline(2, 3)
        # (1, 1) = id 4 depends on (0, 1) = 1 and (0, 0) = 0.
        assert g.has_edge(1, 4)
        assert g.has_edge(0, 4)
        assert not g.has_edge(2, 4)

    def test_levels_equal_depth(self):
        g = pipeline(5, 2)
        assert dag_levels(g).max() == 4


class TestLaplace:
    def test_diamond_counts(self):
        # size s -> s^2 tasks (sum 1..s..1).
        for s in (1, 2, 4):
            assert laplace(s).n == s * s

    def test_single_entry_exit(self):
        g = laplace(3)
        assert g.entry_nodes.size == 1
        assert g.exit_nodes.size == 1

    def test_depth(self):
        g = laplace(3)
        assert dag_levels(g).max() == 4  # 2s - 2 rows below the root


class TestTrees:
    def test_out_tree_counts(self):
        g = out_tree(3, 2)
        assert g.n == 7
        assert g.entry_nodes.size == 1
        assert g.exit_nodes.size == 4

    def test_in_tree_mirrors_out_tree(self):
        g = in_tree(3, 2)
        assert g.n == 7
        assert g.entry_nodes.size == 4
        assert g.exit_nodes.size == 1

    def test_fanout(self):
        g = out_tree(2, 3)
        assert g.n == 4
        assert g.out_degree()[0] == 3

    def test_data_size_applied(self):
        g = out_tree(2, 2, data_size=7.5)
        assert np.all(g.edge_data == 7.5)


class TestAllSchedulable:
    """Every generated workflow must be schedulable end-to-end."""

    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: gaussian_elimination(5),
            lambda: fft(8),
            lambda: fork_join(3, 4),
            lambda: pipeline(4, 4),
            lambda: laplace(4),
            lambda: out_tree(4),
            lambda: in_tree(4),
        ],
    )
    def test_heft_schedules_it(self, graph_factory):
        from repro.core.problem import SchedulingProblem
        from repro.heuristics.heft import HeftScheduler
        from repro.schedule.evaluation import evaluate

        graph = graph_factory()
        rng = np.random.default_rng(0)
        times = rng.uniform(1.0, 10.0, size=(graph.n, 3))
        problem = SchedulingProblem.deterministic(graph, times)
        schedule = HeftScheduler().schedule(problem)
        assert evaluate(schedule).makespan > 0
