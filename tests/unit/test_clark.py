"""Unit tests for the Clark analytical makespan approximation."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.heuristics.heft import HeftScheduler
from repro.heuristics.random_sched import random_schedule
from repro.robustness.clark import analytic_robustness, clark_makespan, clark_max
from repro.robustness.montecarlo import assess_robustness
from repro.schedule.schedule import Schedule
from tests.conftest import make_random_problem


class TestClarkMax:
    def test_degenerate_deterministic(self):
        mean, var = clark_max(5.0, 0.0, 3.0, 0.0)
        assert (mean, var) == (5.0, 0.0)
        mean, var = clark_max(3.0, 0.0, 5.0, 0.0)
        assert (mean, var) == (5.0, 0.0)

    def test_identical_normals(self):
        # max of two iid N(0, 1): mean = 1/sqrt(pi), var = 1 - 1/pi.
        mean, var = clark_max(0.0, 1.0, 0.0, 1.0)
        assert mean == pytest.approx(1.0 / np.sqrt(np.pi), abs=1e-9)
        assert var == pytest.approx(1.0 - 1.0 / np.pi, abs=1e-9)

    def test_dominant_operand(self):
        # When A is far above B, max ~ A.
        mean, var = clark_max(100.0, 1.0, 0.0, 1.0)
        assert mean == pytest.approx(100.0, abs=1e-6)
        assert var == pytest.approx(1.0, abs=1e-3)

    def test_symmetry(self):
        a = clark_max(1.0, 2.0, 3.0, 4.0)
        b = clark_max(3.0, 4.0, 1.0, 2.0)
        assert a == pytest.approx(b)

    def test_mean_at_least_each_operand(self):
        mean, _ = clark_max(1.0, 1.0, 1.5, 2.0)
        assert mean >= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            clark_max(0.0, -1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            clark_max(0.0, 1.0, 0.0, 1.0, correlation=2.0)

    def test_against_monte_carlo(self):
        rng = np.random.default_rng(0)
        a = rng.normal(10.0, 2.0, 200000)
        b = rng.normal(11.0, 3.0, 200000)
        m = np.maximum(a, b)
        mean, var = clark_max(10.0, 4.0, 11.0, 9.0)
        assert mean == pytest.approx(m.mean(), rel=0.01)
        assert var == pytest.approx(m.var(), rel=0.03)


class TestClarkMakespan:
    def test_deterministic_problem_exact(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        est = clark_makespan(s)
        assert est.mean == pytest.approx(29.0)
        assert est.std == pytest.approx(0.0)

    def test_chain_is_exact_in_moments(self, uncertain_diamond):
        """A serial chain has no max: Clark is exact for mean/variance."""
        s = Schedule(uncertain_diamond, [[0, 1, 2, 3], []])
        est = clark_makespan(s)
        # Serial schedule on one processor: all comm is zero. But the DAG
        # has a diamond, so starts still take maxes of *chained* values;
        # mean must equal sum of means only if the chain order dominates.
        mc = assess_robustness(s, 30000, rng=1)
        assert est.mean == pytest.approx(mc.mean_makespan, rel=0.02)

    @pytest.mark.parametrize("seed", range(4))
    def test_mean_close_to_monte_carlo(self, seed):
        problem = make_random_problem(seed, n=18, m=3, mean_ul=3.0)
        s = random_schedule(problem, seed)
        est = clark_makespan(s)
        mc = assess_robustness(s, 20000, rng=seed)
        # Canonical-form Clark: ~1% on the mean, a few % on the std.
        assert est.mean == pytest.approx(mc.mean_makespan, rel=0.02)
        mc_std = mc.realized_makespans.std()
        if mc_std > 0:
            assert est.std == pytest.approx(mc_std, rel=0.15)

    @pytest.mark.parametrize("seed", range(3))
    def test_correlation_tracking_beats_independence(self, seed):
        """The canonical form must be at least as accurate on the mean as
        the independence fallback (which is biased high)."""
        problem = make_random_problem(seed, n=18, m=3, mean_ul=3.0)
        s = random_schedule(problem, seed)
        mc = assess_robustness(s, 20000, rng=seed)
        canon = clark_makespan(s).mean
        indep = clark_makespan(s, track_correlations=False).mean
        assert abs(canon - mc.mean_makespan) <= abs(indep - mc.mean_makespan) + 1e-6
        assert indep >= canon - 1e-6  # independence never under-predicts

    def test_completion_moments_shapes(self, small_random_problem):
        s = HeftScheduler().schedule(small_random_problem)
        est = clark_makespan(s)
        assert est.completion_means.shape == (small_random_problem.n,)
        assert np.all(est.completion_vars >= 0)


class TestClarkEstimateMetrics:
    def test_miss_rate_normal_theory(self):
        from repro.robustness.clark import ClarkEstimate

        est = ClarkEstimate(
            mean=100.0, std=10.0, completion_means=np.zeros(1), completion_vars=np.zeros(1)
        )
        assert est.miss_rate(100.0) == pytest.approx(0.5)
        assert est.miss_rate(110.0) == pytest.approx(float(norm.sf(1.0)))

    def test_tardiness_normal_theory(self):
        from repro.robustness.clark import ClarkEstimate

        est = ClarkEstimate(
            mean=100.0, std=10.0, completion_means=np.zeros(1), completion_vars=np.zeros(1)
        )
        # E[(X - 100)+] for N(100, 10) = 10 / sqrt(2 pi).
        assert est.mean_relative_tardiness(100.0) == pytest.approx(
            10.0 / np.sqrt(2 * np.pi) / 100.0
        )
        with pytest.raises(ValueError):
            est.mean_relative_tardiness(0.0)

    def test_zero_std_estimates(self):
        from repro.robustness.clark import ClarkEstimate

        est = ClarkEstimate(
            mean=50.0, std=0.0, completion_means=np.zeros(1), completion_vars=np.zeros(1)
        )
        assert est.miss_rate(60.0) == 0.0
        assert est.miss_rate(40.0) == 1.0
        assert est.mean_relative_tardiness(40.0) == pytest.approx(0.25)


class TestAnalyticRobustness:
    @pytest.mark.parametrize("seed", range(3))
    def test_tracks_monte_carlo(self, seed):
        problem = make_random_problem(100 + seed, n=16, m=3, mean_ul=4.0)
        s = HeftScheduler().schedule(problem)
        analytic = analytic_robustness(s)
        mc = assess_robustness(s, 20000, rng=seed)
        # Miss rate within 0.15 absolute; tardiness within 40% relative
        # (documented approximation error: independence + normality).
        assert analytic["miss_rate"] == pytest.approx(mc.miss_rate, abs=0.15)
        if mc.mean_tardiness > 0.01:
            assert analytic["mean_tardiness"] == pytest.approx(
                mc.mean_tardiness, rel=0.4
            )

    def test_deterministic_schedule_perfect(self, diamond_problem):
        s = Schedule(diamond_problem, [[0, 1], [2, 3]])
        analytic = analytic_robustness(s)
        assert analytic["miss_rate"] == 0.0
        assert analytic["r1"] == float("inf")
        assert analytic["r2"] == float("inf")

    def test_keys(self, small_random_problem):
        s = HeftScheduler().schedule(small_random_problem)
        analytic = analytic_robustness(s)
        assert set(analytic) == {
            "mean_makespan",
            "std_makespan",
            "miss_rate",
            "mean_tardiness",
            "r1",
            "r2",
        }
