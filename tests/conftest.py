"""Shared fixtures: hand-checked small instances and random pools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SchedulingProblem
from repro.graph.generator import DagParams
from repro.graph.taskgraph import TaskGraph
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel, UncertaintyParams


@pytest.fixture
def diamond_graph() -> TaskGraph:
    """0 -> {1, 2} -> 3 with hand-picked data sizes."""
    return TaskGraph(
        4,
        [(0, 1), (0, 2), (1, 3), (2, 3)],
        [10.0, 20.0, 10.0, 10.0],
        name="diamond",
    )


@pytest.fixture
def diamond_problem(diamond_graph: TaskGraph) -> SchedulingProblem:
    """Deterministic 2-processor diamond with hand-computable schedules.

    Times (task x proc)::

        t0: [2, 3]   t1: [4, 5]   t2: [6, 4]   t3: [3, 3]
    """
    times = np.array(
        [
            [2.0, 3.0],
            [4.0, 5.0],
            [6.0, 4.0],
            [3.0, 3.0],
        ]
    )
    return SchedulingProblem.deterministic(diamond_graph, times, name="diamond")


@pytest.fixture
def chain_problem() -> SchedulingProblem:
    """3-task chain 0 -> 1 -> 2 on two processors, unit data."""
    graph = TaskGraph(3, [(0, 1), (1, 2)], [5.0, 5.0], name="chain")
    times = np.array([[2.0, 4.0], [3.0, 1.0], [2.0, 2.0]])
    return SchedulingProblem.deterministic(graph, times, name="chain")


@pytest.fixture
def single_task_problem() -> SchedulingProblem:
    """Degenerate single-task instance (edge cases)."""
    graph = TaskGraph(1, [], name="single")
    return SchedulingProblem.deterministic(graph, np.array([[7.0, 9.0]]))


@pytest.fixture
def small_random_problem() -> SchedulingProblem:
    """A 16-task random instance with real uncertainty (UL = 3)."""
    return SchedulingProblem.random(
        m=3,
        dag_params=DagParams(n=16, alpha=1.0, cc=20.0, ccr=0.5),
        uncertainty_params=UncertaintyParams(mean_ul=3.0),
        rng=1234,
        name="small-random",
    )


@pytest.fixture
def uncertain_diamond(diamond_graph: TaskGraph) -> SchedulingProblem:
    """Diamond with genuine uncertainty (UL = 2 everywhere)."""
    bcet = np.array(
        [
            [2.0, 3.0],
            [4.0, 5.0],
            [6.0, 4.0],
            [3.0, 3.0],
        ]
    )
    ul = np.full((4, 2), 2.0)
    return SchedulingProblem(
        graph=diamond_graph,
        platform=Platform(2),
        uncertainty=UncertaintyModel(bcet, ul),
        name="uncertain-diamond",
    )


def make_random_problem(
    seed: int, n: int = 12, m: int = 3, mean_ul: float = 2.0
) -> SchedulingProblem:
    """Helper for tests that need many distinct random instances."""
    return SchedulingProblem.random(
        m=m,
        dag_params=DagParams(n=n, alpha=1.0, cc=20.0, ccr=0.3),
        uncertainty_params=UncertaintyParams(mean_ul=mean_ul),
        rng=seed,
    )
