"""Integration tests for the energy-grid frontier study.

Covers the issue's acceptance criteria end to end on a small scale:
every cell respects its ε-budget and slack floor, backup overlapping
strictly beats naive duplication on fault-free energy at equal verified
reliability, and the grid is bit-identical for any worker count.
"""

import json

import numpy as np
import pytest

from repro.energy import PowerModel
from repro.experiments.config import ExperimentConfig, Scale
from repro.experiments.energy_grid import run_energy_grid
from repro.ga.engine import GAParams
from repro.io import report_to_dict

_SCALE = Scale(
    name="test",
    n_graphs=2,
    n_realizations=40,
    n_tasks=16,
    ga_max_iterations=12,
    ga_stagnation=6,
)
_CONFIG = ExperimentConfig(scale=_SCALE, m=4, seed=99)
_PARAMS = GAParams(population_size=8, max_iterations=12, stagnation_limit=6)
_EPSILONS = (1.0, 1.4)


@pytest.fixture(scope="module")
def grid():
    return run_energy_grid(
        _CONFIG,
        epsilons=_EPSILONS,
        mean_ul=2.0,
        slack_ratio=0.5,
        k=1,
        deadline_factor=4.0,
        replication_realizations=4,
        ga_params=_PARAMS,
    )


def _outcome_key(o):
    return {
        "instance": o.instance,
        "strategy": o.strategy,
        "epsilon": o.epsilon,
        "m_heft": o.m_heft,
        "makespan": o.makespan,
        "avg_slack": o.avg_slack,
        "min_slack": o.min_slack,
        "energy": o.energy,
        "dvfs_energy": o.dvfs_energy,
        "report": report_to_dict(o.report),
    }


def _replication_key(r):
    return {
        "instance": r.instance,
        "policy": r.policy,
        "k": r.k,
        "deadline": r.deadline,
        "e_total": r.energy.total,
        "e_worst": r.energy.worst_case_backup,
        "reserved": list(map(float, r.energy.reserved_time)),
        "survival": r.survival.to_dict(),
    }


class TestFrontier:
    def test_grid_shape(self, grid):
        n = _SCALE.n_graphs
        # heft once per instance + each GA strategy once per (instance, eps)
        assert len(grid.cells("heft")) == n
        for strategy in ("robust-ga", "energy-ga"):
            for eps in _EPSILONS:
                assert len(grid.cells(strategy, eps)) == n
        assert len(grid.replication) == 2 * n  # both policies per instance

    def test_every_cell_respects_its_constraints(self, grid):
        """The ε-constraint holds in every cell — the HEFT seed makes the
        GA structurally feasible, so this is 100%, not 'usually'."""
        for outcome in grid.outcomes:
            assert outcome.feasible, (
                f"{outcome.strategy} eps={outcome.epsilon} "
                f"instance={outcome.instance} infeasible"
            )

    def test_energy_ga_never_loses_to_robust_ga_on_energy(self, grid):
        """Instance-mean energy of the energy GA is no worse than the
        power-oblivious robust GA at every ε (both contain HEFT, but only
        the energy GA optimizes joules)."""
        for eps in _EPSILONS:
            e_energy = np.mean([o.energy for o in grid.cells("energy-ga", eps)])
            e_robust = np.mean([o.energy for o in grid.cells("robust-ga", eps)])
            assert e_energy <= e_robust * (1 + 1e-9)

    def test_dvfs_post_pass_never_costs_energy(self, grid):
        for outcome in grid.outcomes:
            assert outcome.dvfs_energy <= outcome.energy * (1 + 1e-9)

    def test_tables_render(self, grid):
        table = grid.to_table()
        assert "energy grid" in table
        assert "energy-ga" in table and "robust-ga" in table
        rep = grid.replication_table()
        assert "replication" in rep
        assert "overlap" in rep and "duplicate" in rep


class TestReplication:
    def test_overlap_beats_duplicate_at_equal_reliability(self, grid):
        """The headline claim: fault-free energy strictly lower under
        overlapping, with identical verified survival."""
        by_instance = {}
        for r in grid.replication:
            by_instance.setdefault(r.instance, {})[r.policy] = r
        assert by_instance
        for cells in by_instance.values():
            overlap, duplicate = cells["overlap"], cells["duplicate"]
            assert overlap.energy.total < duplicate.energy.total
            assert overlap.survival.survives and duplicate.survival.survives
            assert overlap.survival.guaranteed == duplicate.survival.guaranteed

    def test_survival_verified_in_every_cell(self, grid):
        for r in grid.replication:
            assert r.survival.survives
            assert r.survival.n_missed == 0
            assert r.survival.n_subsets == _CONFIG.m  # every 1-failure subset
            assert r.survival.worst_realized_makespan <= r.deadline * (1 + 1e-9)


class TestDeterminism:
    def test_parallel_run_is_bit_identical_to_serial(self, grid):
        """Two workers, same seed: every cell identical down to the JSON
        encoding of the Monte-Carlo reports."""
        parallel = run_energy_grid(
            _CONFIG,
            epsilons=_EPSILONS,
            mean_ul=2.0,
            slack_ratio=0.5,
            k=1,
            deadline_factor=4.0,
            replication_realizations=4,
            ga_params=_PARAMS,
            n_jobs=2,
        )
        serial_json = json.dumps(
            [_outcome_key(o) for o in grid.outcomes], sort_keys=True
        )
        parallel_json = json.dumps(
            [_outcome_key(o) for o in parallel.outcomes], sort_keys=True
        )
        assert serial_json == parallel_json
        assert json.dumps(
            [_replication_key(r) for r in grid.replication], sort_keys=True
        ) == json.dumps(
            [_replication_key(r) for r in parallel.replication], sort_keys=True
        )

    def test_rerun_is_deterministic(self, grid):
        again = run_energy_grid(
            _CONFIG,
            epsilons=_EPSILONS,
            mean_ul=2.0,
            slack_ratio=0.5,
            k=1,
            deadline_factor=4.0,
            replication_realizations=4,
            ga_params=_PARAMS,
        )
        assert [_outcome_key(o) for o in again.outcomes] == [
            _outcome_key(o) for o in grid.outcomes
        ]


class TestValidation:
    def test_rejects_sub_unit_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            run_energy_grid(_CONFIG, epsilons=(0.9,))

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strateg"):
            run_energy_grid(_CONFIG, strategies=("heft", "bogus"))

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match="k"):
            run_energy_grid(_CONFIG, k=-1)
