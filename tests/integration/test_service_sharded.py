"""End-to-end tests of the sharded service: routing, parity, chaos.

The deployment contract under test: a coordinator plus N shards is
observationally identical to the single-node daemon — same wire
protocol, bit-identical response content — while adding deterministic
fingerprint routing, GA work stealing, a replicated cache tier that
survives shard death, and supervised shard restart with zero failed
client requests.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.problem import SchedulingProblem
from repro.graph.generator import DagParams
from repro.io import problem_fingerprint, problem_to_dict
from repro.platform.uncertainty import UncertaintyParams
from repro.service import (
    Coordinator,
    CoordinatorConfig,
    SchedulerService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.sharding import HashRing

N_REAL = 100
GA_SMALL = {"max_iterations": 10, "stagnation_limit": 5}
GA_SLOW = {"max_iterations": 300, "stagnation_limit": 300}

#: Fields legitimately differing between two runs of the same request.
VOLATILE = {"elapsed_s"}


def _problem(seed: int = 7, n: int = 20) -> SchedulingProblem:
    return SchedulingProblem.random(
        m=3,
        dag_params=DagParams(n=n),
        uncertainty_params=UncertaintyParams(mean_ul=4.0),
        rng=seed,
    )


def _core(response: dict) -> dict:
    return {k: v for k, v in response.items() if k not in VOLATILE}


class CoordinatorHarness:
    """A live coordinator on a background thread; ``port`` after start."""

    def __init__(self, **config) -> None:
        self.coordinator = Coordinator(CoordinatorConfig(port=0, **config))
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            await self.coordinator.start()
            self._ready.set()
            await self.coordinator._shutdown_event.wait()
            await asyncio.sleep(0.05)
            await self.coordinator.aclose()

        asyncio.run(main())

    def __enter__(self) -> "CoordinatorHarness":
        self._thread.start()
        assert self._ready.wait(timeout=60), "coordinator did not start"
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            with self.client() as client:
                client.shutdown()
        except OSError:
            pass
        self._thread.join(timeout=60)

    @property
    def port(self) -> int:
        return self.coordinator.port

    def client(self) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, retry_s=5.0)


def _drive(client: ServiceClient, problems) -> list[dict]:
    """The mixed request sequence both deployments must answer alike."""
    responses = []
    for i, problem in enumerate(problems):
        responses.append(
            client.solve(
                problem,
                solver="ga",
                epsilon=1.2,
                seed=7,
                ga=GA_SMALL,
                n_realizations=N_REAL,
                request_id=f"ga-{i}",
            )
        )
        responses.append(
            client.solve(
                problem,
                solver="heft",
                seed=7,
                n_realizations=N_REAL,
                request_id=f"heft-{i}",
            )
        )
    # Repeats: cache hits and warm-start interplay must match too.
    responses.append(
        client.solve(
            problems[0],
            solver="ga",
            epsilon=1.2,
            seed=7,
            ga=GA_SMALL,
            n_realizations=N_REAL,
            request_id="repeat",
        )
    )
    return responses


class TestShardedParity:
    def test_four_shards_bit_identical_to_single_node(self):
        problems = [_problem(seed=s, n=15) for s in range(3)]

        single_service = SchedulerService(ServiceConfig(port=0))
        single: list[dict] = []

        def run_single() -> None:
            async def main() -> None:
                await single_service.start()
                loop = asyncio.get_running_loop()

                def work() -> list[dict]:
                    with ServiceClient(
                        "127.0.0.1", single_service.port, retry_s=5.0
                    ) as client:
                        return _drive(client, problems)

                single.extend(await loop.run_in_executor(None, work))
                await single_service.aclose()

            asyncio.run(main())

        run_single()

        with CoordinatorHarness(shards=4, transport="inproc") as harness:
            with harness.client() as client:
                sharded = _drive(client, problems)
                status = client.status()

        assert len(single) == len(sharded)
        for expect, got in zip(single, sharded):
            assert _core(expect) == _core(got)
        # The shards really did the solving (routing happened).
        routed = sum(s["routed"] for s in status["shards"])
        assert routed >= len(problems) * 2
        assert status["server"]["role"] == "coordinator"

    def test_shard_count_does_not_change_responses(self):
        problem = _problem(seed=11, n=15)
        cores = []
        for shards in (1, 3):
            with CoordinatorHarness(shards=shards, transport="inproc") as h:
                with h.client() as client:
                    cores.append(
                        _core(
                            client.solve(
                                problem,
                                solver="ga",
                                epsilon=1.2,
                                seed=5,
                                ga=GA_SMALL,
                                n_realizations=N_REAL,
                            )
                        )
                    )
        assert cores[0] == cores[1]


class TestRouting:
    def test_same_fingerprint_always_same_shard(self):
        problem = _problem(seed=17, n=12)
        with CoordinatorHarness(shards=4, transport="inproc") as harness:
            with harness.client() as client:
                # Distinct seeds defeat the caches; warm_start=False
                # defeats seed injection — every request is dispatched.
                for seed in range(6):
                    client.solve(
                        problem,
                        solver="heft",
                        seed=seed,
                        n_realizations=50,
                        warm_start=False,
                    )
                status = client.status()
        homes = [s for s in status["shards"] if s["routed"] > 0]
        assert len(homes) == 1  # one fingerprint, one home shard
        assert homes[0]["routed"] == 6
        assert status["routing"]["home"] == 6
        assert status["routing"]["stolen"] == 0

    def test_routing_matches_the_public_ring(self):
        # The coordinator must route exactly where HashRing says, so
        # operators can predict placement from fingerprints alone.
        problems = [_problem(seed=s, n=12) for s in range(4)]
        node_ids = [f"shard-{i}" for i in range(4)]
        ring = HashRing(node_ids)
        with CoordinatorHarness(shards=4, transport="inproc") as harness:
            with harness.client() as client:
                for problem in problems:
                    client.solve(
                        problem,
                        solver="heft",
                        seed=1,
                        n_realizations=50,
                        warm_start=False,
                    )
                status = client.status()
        expected: dict[str, int] = {}
        for problem in problems:
            home = ring.node_for(problem_fingerprint(problem))
            expected[home] = expected.get(home, 0) + 1
        observed = {
            s["node_id"]: s["routed"]
            for s in status["shards"]
            if s["routed"] > 0
        }
        assert observed == expected

    def test_deep_ga_backlog_is_stolen(self):
        node_ids = [f"shard-{i}" for i in range(2)]
        ring = HashRing(node_ids)
        # Problems all homed on one shard: without stealing they would
        # serialize behind each other there.
        target = ring.node_for(problem_fingerprint(_problem(seed=0, n=12)))
        problems, seed = [], 0
        while len(problems) < 3:
            candidate = _problem(seed=seed, n=12)
            if ring.node_for(problem_fingerprint(candidate)) == target:
                problems.append(candidate)
            seed += 1
        with CoordinatorHarness(
            shards=2, transport="inproc", ga_queue_limit=64
        ) as harness:

            def solve(problem):
                with harness.client() as client:
                    return client.solve(
                        problem,
                        solver="ga",
                        epsilon=1.2,
                        seed=3,
                        ga=GA_SLOW,
                        n_realizations=50,
                        warm_start=False,
                    )

            with ThreadPoolExecutor(3) as pool:
                results = list(pool.map(solve, problems))
            with harness.client() as client:
                status = client.status()
        assert all(r["ok"] and not r["degraded"] for r in results)
        assert status["routing"]["stolen"] >= 1
        stolen_to = [
            s for s in status["shards"] if s["node_id"] != target
        ]
        assert sum(s["routed"] for s in stolen_to) >= 1


class TestChaos:
    def test_kill_one_shard_zero_failed_requests(self):
        problems = [_problem(seed=s, n=25) for s in range(8)]
        cache_probe = dict(
            solver="ga",
            epsilon=1.2,
            seed=9,
            ga=GA_SMALL,
            n_realizations=50,
            warm_start=False,
        )
        with CoordinatorHarness(
            shards=2, transport="tcp", ga_queue_limit=64, max_restarts=3
        ) as harness:
            with harness.client() as client:
                # Seed the replicated cache before the murder.
                probe = client.solve(problems[0], **cache_probe)
                assert not probe["cached"]
                victim = client.status()["shards"][0]

                def solve(i: int) -> dict:
                    with harness.client() as c:
                        return c.solve(
                            problems[i],
                            solver="ga",
                            epsilon=1.2,
                            seed=7,
                            ga=GA_SLOW,
                            n_realizations=N_REAL,
                            request_id=f"chaos-{i}",
                        )

                with ThreadPoolExecutor(8) as pool:
                    futures = [pool.submit(solve, i) for i in range(8)]
                    time.sleep(0.3)  # let dispatches reach the shards
                    os.kill(victim["pid"], signal.SIGKILL)
                    results = [f.result(timeout=180) for f in futures]

                # The headline guarantee: every client request succeeds.
                assert all(r.get("ok") for r in results)
                assert [r["id"] for r in results] == [
                    f"chaos-{i}" for i in range(8)
                ]

                # The replicated cache tier answers for the dead shard.
                hit = client.solve(problems[0], **cache_probe)
                assert hit["cached"]
                assert _core(hit) == _core(dict(probe, cached=True))

                # Supervision respawned the victim under a new pid.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    status = client.status()
                    replacement = next(
                        s
                        for s in status["shards"]
                        if s["node_id"] == victim["node_id"]
                    )
                    if replacement["alive"] and replacement["pid"] != victim["pid"]:
                        break
                    time.sleep(0.2)
                assert replacement["alive"]
                assert replacement["pid"] != victim["pid"]
                assert replacement["restarts"] == 1
                assert status["routing"]["shard_restarts"] == 1

                # And the reborn shard serves traffic.
                after = client.solve(
                    problems[1], solver="heft", seed=1, n_realizations=50
                )
                assert after["ok"]
