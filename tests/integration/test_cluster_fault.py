"""Fault-tolerance integration tests: killed, hung, and poison workers.

The crash tasks are self-inflicting: on their first attempt they write a
marker file (carrying their pid) and then SIGKILL/SIGSTOP their own
worker process mid-task; on retry the marker exists, so they compute the
real, seed-derived result.  That makes the failure deterministic without
any cross-process coordination from the test body.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig, Scheduler, TaskSpec, TaskState


def _seeded_values(seed):
    return np.random.default_rng(seed).random(8).tolist()


def _kill_worker_on_first_attempt(marker_dir, key, seed):
    marker = os.path.join(marker_dir, f"{key}.attempted")
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)  # worker dies mid-task
    return {"pid": os.getpid(), "values": _seeded_values(seed)}


def _hang_worker_on_first_attempt(marker_dir, key, seed):
    marker = os.path.join(marker_dir, f"{key}.attempted")
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGSTOP)  # freezes heartbeats too
    return {"pid": os.getpid(), "values": _seeded_values(seed)}


def _well_behaved(seed):
    return {"pid": os.getpid(), "values": _seeded_values(seed)}


def _poison():
    raise ValueError("this task always fails")


SUPERVISED = dict(
    heartbeat_interval=0.1,
    heartbeat_timeout=1.5,
    poll_interval=0.02,
)


class TestSigkillRecovery:
    def test_killed_worker_task_retried_with_same_result(self, tmp_path):
        """A SIGKILLed worker's in-flight task reruns elsewhere, same seed,
        identical result."""
        specs = [
            TaskSpec(
                key="victim",
                fn=_kill_worker_on_first_attempt,
                args=(str(tmp_path), "victim", 1234),
                seed=1234,
                max_retries=2,
            )
        ] + [
            TaskSpec(key=f"ok{i}", fn=_well_behaved, args=(i,), seed=i)
            for i in range(4)
        ]
        sched = Scheduler(ClusterConfig(n_workers=2, **SUPERVISED))
        out = sched.run(specs)

        victim = out["victim"]
        assert victim.state is TaskState.DONE
        assert victim.retries == 1
        # Same seed => bit-identical result, no matter which worker reran it.
        assert victim.result["values"] == _seeded_values(1234)
        # It really did run on a different process than the killed attempt.
        killed_pid = int((tmp_path / "victim.attempted").read_text())
        assert victim.result["pid"] != killed_pid
        # The pool healed: a replacement worker was spawned.
        assert sched.metrics.respawns >= 1
        assert sched.metrics.retried >= 1
        # Collateral tasks all completed.
        assert all(out[f"ok{i}"].ok for i in range(4))
        assert all(
            out[f"ok{i}"].result["values"] == _seeded_values(i) for i in range(4)
        )

    def test_checkpoint_survives_crashes(self, tmp_path):
        """Cells journaled before a crash are restored on resume."""
        from repro.cluster import Checkpoint

        path = tmp_path / "journal.jsonl"
        specs = [
            TaskSpec(key=f"t{i}", fn=_well_behaved, args=(i,), seed=i)
            for i in range(3)
        ]
        Scheduler(
            ClusterConfig(n_workers=2, **SUPERVISED),
            checkpoint=Checkpoint(path, run_id="crashy"),
        ).run(specs)
        sched = Scheduler(
            ClusterConfig(n_workers=2, **SUPERVISED),
            checkpoint=Checkpoint(path, run_id="crashy"),
        )
        out = sched.run(specs)
        assert sched.metrics.restored == 3
        assert all(o.from_checkpoint for o in out.values())
        assert [out[f"t{i}"].result["values"] for i in range(3)] == [
            _seeded_values(i) for i in range(3)
        ]


class TestHangRecovery:
    def test_hung_worker_detected_and_task_retried(self, tmp_path):
        """A worker that stops heartbeating (SIGSTOP) is killed and its
        task reruns with the same seed."""
        specs = [
            TaskSpec(
                key="sleeper",
                fn=_hang_worker_on_first_attempt,
                args=(str(tmp_path), "sleeper", 77),
                seed=77,
                max_retries=2,
            ),
            TaskSpec(key="ok", fn=_well_behaved, args=(5,), seed=5),
        ]
        sched = Scheduler(ClusterConfig(n_workers=2, **SUPERVISED))
        start = time.monotonic()
        out = sched.run(specs)
        assert out["sleeper"].state is TaskState.DONE
        assert out["sleeper"].result["values"] == _seeded_values(77)
        stopped_pid = int((tmp_path / "sleeper.attempted").read_text())
        assert out["sleeper"].result["pid"] != stopped_pid
        assert out["ok"].ok
        # Detection is heartbeat-driven: well under an interactive timeout.
        assert time.monotonic() - start < 30


class TestPoisonTask:
    def test_poison_fails_without_stalling_the_pool(self):
        """A task that always raises exhausts max_retries, is marked
        failed, and every other task still completes."""
        specs = [TaskSpec(key="poison", fn=_poison, max_retries=2)] + [
            TaskSpec(key=f"ok{i}", fn=_well_behaved, args=(i,), seed=i)
            for i in range(6)
        ]
        sched = Scheduler(ClusterConfig(n_workers=2, **SUPERVISED))
        out = sched.run(specs)
        poison = out["poison"]
        assert poison.state is TaskState.FAILED
        assert poison.retries == 2  # 3 attempts: first + max_retries
        assert "this task always fails" in poison.error
        assert all(out[f"ok{i}"].ok for i in range(6))
        assert sched.metrics.failed == 1
        assert sched.metrics.done == 6


class TestPoolDeterminism:
    def test_pool_matches_serial(self):
        specs = [
            TaskSpec(key=f"t{i}", fn=_well_behaved, args=(i,), seed=i)
            for i in range(8)
        ]
        serial = Scheduler(ClusterConfig(n_workers=0)).run(specs)
        pooled = Scheduler(ClusterConfig(n_workers=3, **SUPERVISED)).run(specs)
        for key in serial:
            assert serial[key].result["values"] == pooled[key].result["values"]
