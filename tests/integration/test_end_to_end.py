"""Integration tests: the full pipeline reproduces the paper's core claims
on small instances."""

import numpy as np
import pytest

import repro
from repro.ga.engine import GAParams
from repro.graph.generator import DagParams
from repro.platform.uncertainty import UncertaintyParams


def _problem(seed: int, ul: float = 3.0, n: int = 25):
    return repro.SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=n, ccr=0.2),
        uncertainty_params=UncertaintyParams(mean_ul=ul),
        rng=seed,
    )


GA = GAParams(max_iterations=150, stagnation_limit=60)


class TestEpsilonConstraintPipeline:
    @pytest.fixture(scope="class")
    def solved(self):
        problem = _problem(11)
        result = repro.RobustScheduler(epsilon=1.0, params=GA, rng=1).solve(problem)
        return problem, result

    def test_constraint_honoured(self, solved):
        _, result = solved
        assert result.expected_makespan <= result.m_heft * (1 + 1e-9)

    def test_slack_not_below_heft(self, solved):
        _, result = solved
        heft_slack = repro.evaluate(result.heft_schedule).avg_slack
        # HEFT seeds the population, so the GA can only match or improve.
        assert result.avg_slack >= heft_slack - 1e-9

    def test_robustness_improves_with_slack(self, solved):
        """The paper's headline: maximizing slack under the makespan bound
        yields equal-or-better robustness than HEFT."""
        _, result = solved
        ga_rep = repro.assess_robustness(result.schedule, 800, rng=2)
        heft_rep = repro.assess_robustness(result.heft_schedule, 800, rng=3)
        if ga_rep.avg_slack > heft_rep.avg_slack * 1.05:
            assert ga_rep.mean_tardiness <= heft_rep.mean_tardiness * 1.05

    def test_ga_history_is_monotone(self, solved):
        _, result = solved
        fitness = result.ga_result.history.best_fitness
        assert all(b >= a - 1e-12 for a, b in zip(fitness, fitness[1:]))


class TestEpsilonSweepMonotonicity:
    def test_slack_grows_with_epsilon(self):
        problem = _problem(22, ul=4.0)
        slacks = []
        for eps in (1.0, 1.5, 2.0):
            result = repro.RobustScheduler(epsilon=eps, params=GA, rng=9).solve(problem)
            slacks.append(result.avg_slack)
        # Relaxing the budget can only help the slack objective (GA noise
        # aside; require non-strict monotonicity with 5% tolerance).
        assert slacks[1] >= slacks[0] * 0.95
        assert slacks[2] >= slacks[0] * 0.95

    def test_makespan_stays_within_each_budget(self):
        problem = _problem(23, ul=4.0)
        for eps in (1.0, 1.3, 1.7):
            result = repro.RobustScheduler(epsilon=eps, params=GA, rng=4).solve(problem)
            assert result.expected_makespan <= eps * result.m_heft * (1 + 1e-9)


class TestSlackRobustnessCorrelation:
    def test_slack_evolution_improves_r1_on_average(self):
        """Sec. 5.1 / Fig. 3: as the slack-maximizing GA evolves, robustness
        R1 of the incumbent improves along with the slack.  Like the paper,
        the claim is about the instance-pool average (single instances are
        Monte-Carlo noisy), so we aggregate log-ratios over several seeds."""
        from repro.ga.engine import GeneticScheduler
        from repro.ga.fitness import SlackFitness

        params = GAParams(
            max_iterations=150, stagnation_limit=150, seed_heft=False
        )
        r1_log_ratios = []
        slack_log_ratios = []
        for seed in (33, 44, 55, 66):
            problem = _problem(seed, ul=4.0, n=20)
            run = GeneticScheduler(SlackFitness(), params, rng=0).run(problem)
            first = run.history.best_chromosomes[0].decode(problem)
            last = run.history.best_chromosomes[-1].decode(problem)
            rep0 = repro.assess_robustness(first, 600, rng=1)
            rep1 = repro.assess_robustness(last, 600, rng=2)
            slack_log_ratios.append(np.log(rep1.avg_slack / rep0.avg_slack))
            r1_log_ratios.append(np.log(rep1.r1 / rep0.r1))
        assert np.mean(slack_log_ratios) > 0.0
        assert np.mean(r1_log_ratios) > 0.0


class TestSchedulerComparison:
    def test_heft_is_competitive(self):
        """HEFT beats random schedules and is not far behind the GA on
        pure makespan."""
        from repro.ga.fitness import MakespanFitness
        from repro.ga.engine import GeneticScheduler

        problem = _problem(44)
        heft_m = repro.expected_makespan(repro.HeftScheduler().schedule(problem))
        ga = GeneticScheduler(MakespanFitness(), GA, rng=0).run(problem)
        assert ga.best.makespan <= heft_m + 1e-9  # seeded, so never worse
        assert heft_m <= ga.best.makespan * 1.5  # and HEFT is close

    def test_all_schedulers_produce_valid_schedules(self):
        problem = _problem(55)
        for scheduler in (
            repro.HeftScheduler(),
            repro.CpopScheduler(),
            repro.MinMinScheduler(),
            repro.RandomScheduler(0),
        ):
            schedule = scheduler.schedule(problem)
            ev = repro.evaluate(schedule)
            assert ev.makespan > 0
            assert np.all(ev.slacks >= 0)
