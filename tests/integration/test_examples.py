"""Integration tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_examples_exist():
    scripts = list(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3
    assert (EXAMPLES_DIR / "quickstart.py").exists()
