"""Integration tests for the stream grid: acceptance curves + determinism.

Two contracts from the ISSUE's acceptance criteria:

* at oversubscription (load >= 1.5x) **both** shedding policies must
  beat the no-shedding baseline on system-wide on-time completion —
  the qualitative claim of the two task-dropping papers;
* the same arrival seed + policy reproduces the **same drop set**
  whether the grid runs in-process or fanned out over 4 cluster
  workers — bit-identical results for any worker count.
"""

import math

import pytest

from repro.experiments import run_stream_grid
from repro.stream import StreamParams

#: The default-seed workload the bench and the docs quote.
PARAMS = StreamParams(seed=20060925)

#: Shrunk pool for the serial-vs-parallel comparison (runtime bound).
SMALL = StreamParams(n_jobs=12, tasks=10, m=3, load=2.0, seed=11)


@pytest.fixture(scope="module")
def oversubscribed_grid():
    return run_stream_grid(PARAMS, loads=(1.5, 2.0), policies=("none", "prune", "drop"))


class TestAcceptanceCurves:
    def test_both_policies_beat_no_shedding(self, oversubscribed_grid):
        for load in (1.5, 2.0):
            baseline = oversubscribed_grid.cell(load, "none").on_time_rate
            for policy in ("prune", "drop"):
                shed = oversubscribed_grid.cell(load, policy).on_time_rate
                assert shed > baseline, (
                    f"{policy} did not beat no-shedding at load {load}: "
                    f"{shed:.3f} <= {baseline:.3f}"
                )

    def test_goodput_improves_too(self, oversubscribed_grid):
        for load in (1.5, 2.0):
            baseline = oversubscribed_grid.cell(load, "none").goodput
            for policy in ("prune", "drop"):
                assert oversubscribed_grid.cell(load, policy).goodput > baseline

    def test_curves_shape(self, oversubscribed_grid):
        curves = oversubscribed_grid.curves()
        assert set(curves) == {"none", "prune", "drop"}
        for points in curves.values():
            assert [load for load, _, _ in points] == [1.5, 2.0]
            for _, miss, goodput in points:
                assert 0.0 <= miss <= 1.0
                assert goodput >= 0.0

    def test_table_renders(self, oversubscribed_grid):
        table = oversubscribed_grid.to_table()
        assert "stream grid" in table
        assert "prune" in table and "drop" in table


class TestGridDeterminism:
    def test_serial_matches_four_workers(self):
        serial = run_stream_grid(
            SMALL, loads=(2.0,), policies=("prune", "drop"), n_jobs=1
        )
        fanned = run_stream_grid(
            SMALL, loads=(2.0,), policies=("prune", "drop"), n_jobs=4
        )
        for policy in ("prune", "drop"):
            a = serial.cell(2.0, policy)
            b = fanned.cell(2.0, policy)
            assert a.drop_set == b.drop_set
            assert a.horizon == b.horizon
            assert a.busy_time == b.busy_time
            for oa, ob in zip(a.outcomes, b.outcomes):
                assert oa.status == ob.status
                # NaN-aware: shed jobs never finish in either world.
                assert oa.finish == ob.finish or (
                    math.isnan(oa.finish) and math.isnan(ob.finish)
                )

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="load"):
            run_stream_grid(SMALL, loads=())
        with pytest.raises(ValueError, match="load"):
            run_stream_grid(SMALL, loads=(0.0,))
        with pytest.raises(ValueError, match="policy"):
            run_stream_grid(SMALL, policies=())
        with pytest.raises(ValueError, match="unknown policy"):
            run_stream_grid(SMALL, policies=("lottery",))
        with pytest.raises(ValueError, match="n_jobs"):
            run_stream_grid(SMALL, n_jobs=0)
