"""Integration tests: parallel grid execution is bit-identical to serial."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run_eps_grid
from repro.experiments.config import SCALES
from repro.experiments.workloads import make_problem, make_problems


class TestMakeProblem:
    def test_single_matches_pool(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=3)
        pool = make_problems(cfg, 4.0)
        for i in range(cfg.scale.n_graphs):
            single = make_problem(cfg, 4.0, i)
            assert single.graph == pool[i].graph
            assert np.array_equal(single.uncertainty.ul, pool[i].uncertainty.ul)

    def test_rejects_out_of_range_index(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=3)
        with pytest.raises(ValueError, match="index"):
            make_problem(cfg, 2.0, cfg.scale.n_graphs)
        with pytest.raises(ValueError, match="index"):
            make_problem(cfg, 2.0, -1)


class TestParallelGrid:
    def test_parallel_equals_serial(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        serial = run_eps_grid(cfg, (2.0,), (1.0, 1.5))
        parallel = run_eps_grid(cfg, (2.0,), (1.0, 1.5), n_jobs=2)
        for key in serial.cells:
            for a, b in zip(serial.cells[key], parallel.cells[key]):
                assert a.instance == b.instance
                assert a.ga.expected_makespan == b.ga.expected_makespan
                assert a.ga.avg_slack == b.ga.avg_slack
                assert np.array_equal(
                    a.ga.realized_makespans, b.ga.realized_makespans
                )
                assert np.array_equal(
                    a.heft.realized_makespans, b.heft.realized_makespans
                )

    def test_rejects_bad_n_jobs(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        with pytest.raises(ValueError, match="n_jobs"):
            run_eps_grid(cfg, (2.0,), (1.0,), n_jobs=0)

    def test_instances_sorted_per_cell(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=12)
        grid = run_eps_grid(cfg, (2.0,), (1.0,), n_jobs=3)
        for outcomes in grid.cells.values():
            ids = [o.instance for o in outcomes]
            assert ids == sorted(ids)
