"""Integration tests: parallel/resumed grid execution is bit-identical
to serial."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run_eps_grid
from repro.experiments.config import SCALES
from repro.experiments.workloads import make_problem, make_problems


def _assert_grids_identical(a, b):
    """Every cell, outcome and report field must match bit-for-bit."""
    assert a.cells.keys() == b.cells.keys()
    for key in a.cells:
        assert len(a.cells[key]) == len(b.cells[key])
        for x, y in zip(a.cells[key], b.cells[key]):
            assert (x.instance, x.epsilon, x.mean_ul) == (
                y.instance,
                y.epsilon,
                y.mean_ul,
            )
            for attr in ("ga", "heft"):
                rx, ry = getattr(x, attr), getattr(y, attr)
                assert rx.expected_makespan == ry.expected_makespan
                assert rx.avg_slack == ry.avg_slack
                assert rx.mean_makespan == ry.mean_makespan
                assert rx.mean_tardiness == ry.mean_tardiness
                assert rx.miss_rate == ry.miss_rate
                assert rx.r1 == ry.r1
                assert rx.r2 == ry.r2
                assert np.array_equal(
                    rx.realized_makespans, ry.realized_makespans
                )


class TestMakeProblem:
    def test_single_matches_pool(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=3)
        pool = make_problems(cfg, 4.0)
        for i in range(cfg.scale.n_graphs):
            single = make_problem(cfg, 4.0, i)
            assert single.graph == pool[i].graph
            assert np.array_equal(single.uncertainty.ul, pool[i].uncertainty.ul)

    def test_rejects_out_of_range_index(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=3)
        with pytest.raises(ValueError, match="index"):
            make_problem(cfg, 2.0, cfg.scale.n_graphs)
        with pytest.raises(ValueError, match="index"):
            make_problem(cfg, 2.0, -1)


class TestParallelGrid:
    def test_parallel_equals_serial(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        serial = run_eps_grid(cfg, (2.0,), (1.0, 1.5))
        parallel = run_eps_grid(cfg, (2.0,), (1.0, 1.5), n_jobs=2)
        for key in serial.cells:
            for a, b in zip(serial.cells[key], parallel.cells[key]):
                assert a.instance == b.instance
                assert a.ga.expected_makespan == b.ga.expected_makespan
                assert a.ga.avg_slack == b.ga.avg_slack
                assert np.array_equal(
                    a.ga.realized_makespans, b.ga.realized_makespans
                )
                assert np.array_equal(
                    a.heft.realized_makespans, b.heft.realized_makespans
                )

    def test_rejects_bad_n_jobs(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        with pytest.raises(ValueError, match="n_jobs"):
            run_eps_grid(cfg, (2.0,), (1.0,), n_jobs=0)

    def test_instances_sorted_per_cell(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=12)
        grid = run_eps_grid(cfg, (2.0,), (1.0,), n_jobs=3)
        for outcomes in grid.cells.values():
            ids = [o.instance for o in outcomes]
            assert ids == sorted(ids)


class TestCheckpointResume:
    def test_resume_skips_finished_cells_bit_for_bit(self, tmp_path):
        """A run interrupted mid-grid and restarted with resume completes
        with identical results, re-executing only unfinished cells."""
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        path = tmp_path / "grid.jsonl"
        full = run_eps_grid(cfg, (2.0,), (1.0,), checkpoint=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + cfg.scale.n_graphs  # header + one per cell

        # Simulate an interruption after the first completed cell.
        path.write_text("\n".join(lines[:2]) + "\n")
        messages = []
        resumed = run_eps_grid(
            cfg, (2.0,), (1.0,), checkpoint=path, resume=True,
            progress=messages.append,
        )
        restored = [m for m in messages if "[restored]" in m]
        assert len(restored) == 1  # only the journaled cell was skipped
        assert len(messages) == cfg.scale.n_graphs
        _assert_grids_identical(full, resumed)

    def test_resume_with_workers_matches_serial(self, tmp_path):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        serial = run_eps_grid(cfg, (2.0,), (1.0, 1.5))
        path = tmp_path / "grid.jsonl"
        first = run_eps_grid(cfg, (2.0,), (1.0, 1.5), n_jobs=2, checkpoint=path)
        _assert_grids_identical(serial, first)
        # Full journal: the resumed run restores everything, still identical.
        resumed = run_eps_grid(
            cfg, (2.0,), (1.0, 1.5), n_jobs=2, checkpoint=path, resume=True
        )
        _assert_grids_identical(serial, resumed)

    def test_resume_requires_checkpoint(self):
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        with pytest.raises(ValueError, match="checkpoint"):
            run_eps_grid(cfg, (2.0,), (1.0,), resume=True)

    def test_mismatched_run_rejected(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        run_eps_grid(
            ExperimentConfig(scale=SCALES["smoke"], seed=11),
            (2.0,),
            (1.0,),
            checkpoint=path,
        )
        with pytest.raises(ValueError, match="refusing to resume"):
            run_eps_grid(
                ExperimentConfig(scale=SCALES["smoke"], seed=12),
                (2.0,),
                (1.0,),
                checkpoint=path,
                resume=True,
            )

    def test_fresh_run_replaces_stale_journal(self, tmp_path):
        """Without resume, an existing journal is discarded, not mixed in."""
        import json

        def records(text):
            # key -> result payload, ignoring timing metadata
            return {
                r["key"]: r["result"]
                for r in map(json.loads, text.splitlines())
                if "key" in r
            }

        path = tmp_path / "grid.jsonl"
        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        run_eps_grid(cfg, (2.0,), (1.0,), checkpoint=path)
        first = records(path.read_text())
        run_eps_grid(cfg, (2.0,), (1.0,), checkpoint=path)
        second = records(path.read_text())
        assert len(second) == cfg.scale.n_graphs  # not doubled by appending
        assert second == first

    def test_metrics_dump(self, tmp_path):
        import json

        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        metrics = tmp_path / "metrics.json"
        run_eps_grid(cfg, (2.0,), (1.0,), metrics_path=metrics)
        data = json.loads(metrics.read_text())
        assert data["n_tasks"] == cfg.scale.n_graphs
        assert data["done"] == cfg.scale.n_graphs
        assert data["failed"] == 0


class TestSlackEffectCluster:
    def test_parallel_equals_serial(self):
        from repro.experiments import run_slack_effect

        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        serial = run_slack_effect(cfg, "makespan", uls=(2.0,), n_steps=3)
        parallel = run_slack_effect(
            cfg, "makespan", uls=(2.0,), n_steps=3, n_jobs=2
        )
        for a, b in zip(serial.series, parallel.series):
            assert np.array_equal(a.makespan, b.makespan)
            assert np.array_equal(a.slack, b.slack)
            assert np.array_equal(a.r1, b.r1)

    def test_resume_bit_identical(self, tmp_path):
        from repro.experiments import run_slack_effect

        cfg = ExperimentConfig(scale=SCALES["smoke"], seed=11)
        path = tmp_path / "slack.jsonl"
        full = run_slack_effect(
            cfg, "slack", uls=(2.0,), n_steps=3, checkpoint=path
        )
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")  # keep one cell
        resumed = run_slack_effect(
            cfg, "slack", uls=(2.0,), n_steps=3, checkpoint=path, resume=True
        )
        for a, b in zip(full.series, resumed.series):
            assert np.array_equal(a.makespan, b.makespan)
            assert np.array_equal(a.slack, b.slack)
            assert np.array_equal(a.r1, b.r1)
