"""End-to-end service tests: concurrency, caching, overload shedding.

These drive a real :class:`SchedulerService` over localhost TCP —
the server's event loop runs on a background thread, clients are
plain blocking sockets on worker threads, exactly the production
shape (just in one process so the tests can also read server state).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.problem import SchedulingProblem
from repro.core.robust import RobustScheduler
from repro.ga.engine import GAParams
from repro.graph.generator import DagParams
from repro.heuristics import HeftScheduler
from repro.io import report_to_dict, schedule_to_dict
from repro.platform.uncertainty import UncertaintyParams
from repro.robustness.montecarlo import assess_robustness
from repro.service import SchedulerService, ServiceClient, ServiceConfig

N_REAL = 100
GA_SMALL = {"max_iterations": 10, "stagnation_limit": 5}
GA_SLOW = {"max_iterations": 200, "stagnation_limit": 200}


def _problem(seed: int = 7, n: int = 30) -> SchedulingProblem:
    return SchedulingProblem.random(
        m=3,
        dag_params=DagParams(n=n),
        uncertainty_params=UncertaintyParams(mean_ul=4.0),
        rng=seed,
    )


class ServiceHarness:
    """A live server on a background thread; ``port`` after start."""

    def __init__(self, **config) -> None:
        self.service = SchedulerService(ServiceConfig(port=0, **config))
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            await self.service.start()
            self._ready.set()
            await self.service._shutdown_event.wait()
            await asyncio.sleep(0.05)
            await self.service.aclose()

        asyncio.run(main())

    def __enter__(self) -> "ServiceHarness":
        self._thread.start()
        assert self._ready.wait(timeout=30), "server did not start"
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            with self.client() as client:
                client.shutdown()
        except OSError:
            pass
        self._thread.join(timeout=30)

    @property
    def port(self) -> int:
        return self.service.port

    def client(self) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, retry_s=5.0)


class TestServiceEndToEnd:
    def test_twenty_concurrent_clients_share_one_cache_entry(self):
        problem = _problem()
        with ServiceHarness(workers=1, ga_queue_limit=2) as harness:

            def one_client(i: int) -> dict:
                with harness.client() as client:
                    return client.solve(
                        problem,
                        solver="heft",
                        seed=5,
                        n_realizations=N_REAL,
                        request_id=i,
                    )

            with ThreadPoolExecutor(max_workers=20) as pool:
                first = list(pool.map(one_client, range(20)))
                second = list(pool.map(one_client, range(20, 40)))

            assert all(r["ok"] for r in first + second)
            # Identical content regardless of cache/coalesce path.
            reports = {r["report"]["r1"] for r in first + second}
            assert len(reports) == 1
            assert {r["id"] for r in first} == set(range(20))
            # One computation total: everything else was a cache hit or
            # rode the in-flight future (micro-batching).
            computed = [
                r for r in first + second if not r["cached"] and not r["coalesced"]
            ]
            assert len(computed) == 1
            with harness.client() as client:
                status = client.status()
            cache = status["cache"]
            assert cache["entries"] == 1
            assert cache["hits"] >= 20  # the whole second round, at least
            # Every request does exactly one lookup; of the misses, all
            # but the single computing request coalesced onto its future.
            assert cache["hits"] + cache["misses"] == 40
            assert cache["misses"] == status["requests"]["coalesced"] + 1

    def test_ga_overload_sheds_to_degraded_heuristic(self):
        problem = _problem(n=30)
        n_requests = 12
        with ServiceHarness(workers=1, ga_queue_limit=2) as harness:

            def one_ga(seed: int) -> dict:
                with harness.client() as client:
                    return client.solve(
                        problem,
                        solver="ga",
                        epsilon=1.3,
                        seed=seed,
                        n_realizations=N_REAL,
                        ga=GA_SLOW,
                    )

            with ThreadPoolExecutor(max_workers=n_requests) as pool:
                responses = list(pool.map(one_ga, range(n_requests)))

            # Overload degrades, never errors: every response is a schedule.
            assert all(r["ok"] for r in responses)
            degraded = [r for r in responses if r["degraded"]]
            served = [r for r in responses if not r["degraded"]]
            # 1 running + 2 queued can be served as GA; the rest shed.
            assert len(served) <= 3
            assert len(degraded) >= n_requests - 3
            heft_report = report_to_dict(
                assess_robustness(
                    HeftScheduler().schedule(problem), N_REAL, rng=1
                )
            )
            for r in degraded:
                assert r["solver"] == "heft"
                assert r["requested_solver"] == "ga"
                assert "queue" in r["degraded_reason"]
                # The degraded answer is the real HEFT result (seed 0's
                # assessment stream is seed+1) — valid, just less robust.
                if r["seed"] == 0:
                    assert r["report"] == heft_report
            with harness.client() as client:
                status = client.status()
            assert status["admission"]["shed_queue_full"] == len(degraded)
            assert status["requests"]["degraded"] == len(degraded)

    def test_bit_identical_to_direct_api(self):
        problem = _problem(seed=3, n=25)
        with ServiceHarness(workers=1, ga_queue_limit=2) as harness:
            with harness.client() as client:
                ga = client.solve(
                    problem,
                    solver="ga",
                    epsilon=1.2,
                    seed=9,
                    n_realizations=N_REAL,
                    ga=GA_SMALL,
                )
                heft = client.solve(
                    problem, solver="heft", seed=9, n_realizations=N_REAL
                )
        direct = RobustScheduler(
            epsilon=1.2, params=GAParams(**GA_SMALL), rng=9
        ).solve(problem)
        assert ga["schedule"] == schedule_to_dict(direct.schedule)
        assert ga["report"] == report_to_dict(
            assess_robustness(direct.schedule, N_REAL, rng=10)
        )
        assert ga["m_heft"] == direct.m_heft
        heft_schedule = HeftScheduler().schedule(problem)
        assert heft["schedule"] == schedule_to_dict(heft_schedule)
        assert heft["report"] == report_to_dict(
            assess_robustness(heft_schedule, N_REAL, rng=10)
        )

    def test_cluster_pool_backend_matches_serial(self):
        problem = _problem(seed=5, n=20)

        def solve_with(workers: int) -> dict:
            with ServiceHarness(workers=workers, ga_queue_limit=4) as harness:
                with harness.client() as client:
                    return client.solve(
                        problem,
                        solver="ga",
                        epsilon=1.2,
                        seed=2,
                        n_realizations=N_REAL,
                        ga=GA_SMALL,
                    )

        serial = solve_with(1)
        pooled = solve_with(2)
        assert serial["schedule"] == pooled["schedule"]
        assert serial["report"] == pooled["report"]

    def test_deadline_aware_shedding(self):
        problem = _problem(seed=11, n=30)
        with ServiceHarness(workers=1, ga_queue_limit=8) as harness:
            with harness.client() as client:
                # Prime the service-time estimator with one completed solve.
                client.solve(
                    problem, solver="ga", epsilon=1.2, seed=1,
                    n_realizations=N_REAL, ga=GA_SLOW,
                )

                def occupy(seed: int) -> dict:
                    with harness.client() as c2:
                        return c2.solve(
                            problem, solver="ga", epsilon=1.2, seed=seed,
                            n_realizations=N_REAL, ga=GA_SLOW,
                        )

                with ThreadPoolExecutor(max_workers=2) as pool:
                    busy = [pool.submit(occupy, s) for s in (2, 3)]
                    # Wait until the slot and the queue are occupied.
                    deadline = __import__("time").monotonic() + 10
                    while (
                        harness.service._ga_inflight < 2
                        and __import__("time").monotonic() < deadline
                    ):
                        __import__("time").sleep(0.01)
                    impatient = client.solve(
                        problem, solver="ga", epsilon=1.2, seed=4,
                        n_realizations=N_REAL, ga=GA_SLOW,
                        deadline_s=1e-6,
                    )
                    for f in busy:
                        assert f.result()["ok"]
            assert impatient["ok"]
            assert impatient["degraded"]
            assert "deadline" in impatient["degraded_reason"]

    def test_stream_admission_sheds_without_enqueueing(self):
        """Stream mode: a shed request is served inline, never queued.

        Mirrors the deadline test under ``admission_mode="stream"`` —
        the shed reason is the probabilistic one, the shed request does
        not consume a GA admission, and the tier counters partition the
        routed requests (the invariant pinned in repro.service.admission).
        """
        problem = _problem(seed=12, n=30)
        with ServiceHarness(
            workers=1, ga_queue_limit=8, admission_mode="stream",
            stream_threshold=0.5,
        ) as harness:
            with harness.client() as client:
                client.solve(
                    problem, solver="ga", epsilon=1.2, seed=1,
                    n_realizations=N_REAL, ga=GA_SLOW,
                )

                def occupy(seed: int) -> dict:
                    with harness.client() as c2:
                        return c2.solve(
                            problem, solver="ga", epsilon=1.2, seed=seed,
                            n_realizations=N_REAL, ga=GA_SLOW,
                        )

                with ThreadPoolExecutor(max_workers=2) as pool:
                    busy = [pool.submit(occupy, s) for s in (2, 3)]
                    deadline = __import__("time").monotonic() + 10
                    while (
                        harness.service._ga_inflight < 2
                        and __import__("time").monotonic() < deadline
                    ):
                        __import__("time").sleep(0.01)
                    before = client.status()["admission"]
                    impatient = client.solve(
                        problem, solver="ga", epsilon=1.2, seed=4,
                        n_realizations=N_REAL, ga=GA_SLOW,
                        deadline_s=1e-6,
                    )
                    after = client.status()["admission"]
                    for f in busy:
                        assert f.result()["ok"]
                status = client.status()
            assert impatient["ok"]
            assert impatient["degraded"]
            assert "probability" in impatient["degraded_reason"]
            # Shed, not enqueued: the GA admission count did not move.
            assert after["admitted_ga"] == before["admitted_ga"]
            assert after["shed_probability"] == before["shed_probability"] + 1
            admission = status["admission"]
            assert admission["mode"] == "stream"
            assert admission["shed"] >= 1
            assert admission["admitted_ga"] == 3  # primer + the two busy

    def test_malformed_requests_get_error_responses(self):
        with ServiceHarness(workers=1) as harness:
            with harness.client() as client:
                response = client.request({"op": "solve"})
                assert not response["ok"]
                assert response["error"]["code"] == "bad-request"
                response = client.request({"op": "warp"})
                assert response["error"]["code"] == "unknown-op"
                response = client.request(
                    {"op": "solve", "problem": {"format": "nope"}}
                )
                assert response["error"]["code"] == "bad-problem"
                # The connection survives all of it.
                assert client.ping()


@pytest.mark.parametrize("solver", ["cpop", "peft", "minmin"])
def test_every_fast_solver_served(solver):
    problem = _problem(seed=13, n=15)
    with ServiceHarness(workers=1) as harness:
        with harness.client() as client:
            response = client.solve(
                problem, solver=solver, seed=3, n_realizations=50
            )
    assert response["ok"]
    assert response["solver"] == solver
    assert not response["degraded"]


class TestWarmStart:
    """The structural warm-start store, exercised over the wire."""

    def test_repeat_traffic_is_seeded(self):
        problem = _problem(seed=21, n=20)
        with ServiceHarness(workers=1) as harness:
            with harness.client() as client:
                first = client.solve(
                    problem, solver="ga", epsilon=1.2, seed=1,
                    n_realizations=50, ga=GA_SMALL,
                )
                # The first GA solve finds an empty store...
                assert first["warm_seeds"] == 0
                # ...but feeds it, so a re-solve with a new seed (a result
                # cache miss) starts from the recorded best chromosome.
                second = client.solve(
                    problem, solver="ga", epsilon=1.2, seed=2,
                    n_realizations=50, ga=GA_SMALL,
                )
                assert not second["cached"]
                assert second["warm_seeds"] >= 1

                status = client.status()
                assert status["requests"]["warm_start_hits"] >= 1
                assert status["requests"]["warm_start_misses"] >= 1
                assert status["warm_start"]["entries"] >= 1
                assert status["warm_start"]["recorded"] >= 1

    def test_warm_start_false_is_never_seeded(self):
        problem = _problem(seed=22, n=20)
        with ServiceHarness(workers=1) as harness:
            with harness.client() as client:
                for seed in (1, 2):
                    response = client.solve(
                        problem, solver="ga", epsilon=1.2, seed=seed,
                        n_realizations=50, ga=GA_SMALL, warm_start=False,
                    )
                    assert response["warm_seeds"] == 0
                status = client.status()
                assert status["requests"]["warm_start_hits"] == 0
                # Opting out of suggestions still feeds the store for
                # other clients.
                assert status["warm_start"]["recorded"] >= 1

    def test_warm_responses_deterministic_across_servers(self):
        """Identical traffic against two fresh servers: identical answers.

        The warm-start store is server-side state, but suggestions are a
        deterministic function of the traffic that filled it, and seeds
        ride the request payload before the cache key forms — so two
        independent servers replaying the same request sequence must
        produce bit-identical warm-started responses.
        """
        problem = _problem(seed=23, n=20)

        def replay() -> dict:
            with ServiceHarness(workers=1) as harness:
                with harness.client() as client:
                    client.solve(
                        problem, solver="ga", epsilon=1.2, seed=1,
                        n_realizations=50, ga=GA_SMALL,
                    )
                    return client.solve(
                        problem, solver="ga", epsilon=1.2, seed=2,
                        n_realizations=50, ga=GA_SMALL,
                    )

        first, second = replay(), replay()
        assert first["warm_seeds"] >= 1
        assert first["warm_seeds"] == second["warm_seeds"]
        assert first["schedule"] == second["schedule"]
        assert first["report"] == second["report"]
        assert first["ga_generations"] == second["ga_generations"]

    def test_cli_submit_warm_start_flag_round_trip(self):
        """``repro submit --warm-start/--no-warm-start`` over a live server."""
        from repro.cli import run

        with ServiceHarness(workers=1) as harness:
            base = [
                "submit", "--port", str(harness.port), "--tasks", "15",
                "--seed", "5", "--solver", "ga", "--epsilon", "1.2",
                "--realizations", "50", "--ga-iterations", "8",
                "--ga-stagnation", "4",
            ]
            first = run(base)
            assert "warm-started" not in first
            # Re-submitting finds the store primed; the seeds change the
            # cache identity, so this recomputes rather than hitting the
            # cache, and the summary says so.
            second = run(base)
            assert "warm-started" in second
            assert "cached" not in second
            # Opting out reproduces the first request exactly — including
            # its cache entry.
            third = run(base + ["--no-warm-start"])
            assert "warm-started" not in third
            assert "cached" in third

    def test_heuristics_bypass_the_store(self):
        problem = _problem(seed=24, n=15)
        with ServiceHarness(workers=1) as harness:
            with harness.client() as client:
                response = client.solve(
                    problem, solver="heft", seed=1, n_realizations=50
                )
                assert response["warm_seeds"] == 0
                status = client.status()
                assert status["requests"]["warm_start_hits"] == 0
                assert status["requests"]["warm_start_misses"] == 0
                assert status["warm_start"]["entries"] == 0


class TestServiceEdges:
    """Service-edge regressions: oversized lines and broken clients."""

    def test_over_limit_request_line_gets_clean_error(self):
        # Regression: StreamReader.readline wraps LimitOverrunError in a
        # plain ValueError, which used to escape the read loop and drop
        # the connection with no response.  The server must answer with
        # a bad-request error naming the limit, then close.
        with ServiceHarness(workers=1, max_line_bytes=4096) as harness:
            with harness.client() as client:
                client._file.write(b'{"pad": "' + b"x" * 8192 + b'"}\n')
                client._file.flush()
                response = client.request({"op": "ping"})
                assert not response["ok"]
                assert response["error"]["code"] == "bad-request"
                assert "4096" in response["error"]["message"]
                # The connection is closed afterwards (unrecoverable
                # mid-frame); a fresh one works normally.
                with pytest.raises((ConnectionError, OSError)):
                    client.request({"op": "ping"})
            with harness.client() as client:
                assert client.ping()

    def test_within_limit_large_line_still_served(self):
        problem = _problem(seed=31, n=25)
        with ServiceHarness(workers=1, max_line_bytes=1024 * 1024) as harness:
            with harness.client() as client:
                response = client.solve(
                    problem, solver="heft", seed=1, n_realizations=50
                )
                assert response["ok"]

    def test_timed_out_client_fails_fast_instead_of_desyncing(self):
        # Regression: after a socket timeout the late response stayed in
        # the stream and was read as the answer to the *next* request.
        # The client must mark the connection broken and refuse reuse.
        problem = _problem(seed=32, n=30)
        with ServiceHarness(workers=1) as harness:
            client = ServiceClient(
                "127.0.0.1", harness.port, timeout=0.05, retry_s=5.0
            )
            try:
                with pytest.raises(OSError):  # socket.timeout is OSError
                    client.solve(
                        problem,
                        solver="ga",
                        epsilon=1.2,
                        seed=3,
                        ga=GA_SLOW,
                        n_realizations=N_REAL,
                    )
                with pytest.raises(ConnectionError, match="broken"):
                    client.ping()
                with pytest.raises(ConnectionError, match="broken"):
                    client.status()
            finally:
                client.close()  # must not raise
            # close() stays idempotent and exception-safe.
            client.close()

    def test_close_is_exception_safe_after_server_gone(self):
        # BrokenPipeError out of close() used to mask the original
        # exception in `with` blocks unwinding a failure.
        with ServiceHarness(workers=1) as harness:
            client = harness.client()
            assert client.ping()
        # Harness exit shut the server down; stuff the buffer so close()
        # has pending bytes to flush into a dead socket.
        client._file.write(b'{"op": "ping"}\n')
        client.close()  # swallows the transport error
        client.close()
