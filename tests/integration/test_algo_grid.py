"""Integration tests for the algo-grid catalogue sweep.

Covers the issue's acceptance criteria end to end on a small scale:
every grid cell produces a valid complete schedule, the sweep is
bit-identical serial vs 2 workers, reruns are deterministic, and the
rankings cover every requested combination.
"""

import math

import pytest

from repro.experiments.algo_grid import FAMILIES, run_algo_grid

_COMBOS = (
    "heft",
    "cpop",
    "peft",
    "minmin",
    "heft-append",
    "heft-lookahead",
    "maxmin",
    "random-eft",
)
_KWARGS = dict(
    seed=99,
    combos=_COMBOS,
    families=FAMILIES,
    n_instances=2,
    n_tasks=12,
    m=3,
    mean_ul=2.0,
    n_realizations=16,
)


@pytest.fixture(scope="module")
def results():
    return run_algo_grid(**_KWARGS)


def test_every_cell_is_assessed_and_finite(results):
    assert len(results.outcomes) == len(FAMILIES) * 2 * len(_COMBOS)
    for o in results.outcomes:
        assert o.combo in _COMBOS
        assert o.family in FAMILIES
        assert o.n_tasks >= 1
        assert math.isfinite(o.expected_makespan) and o.expected_makespan > 0
        assert math.isfinite(o.mean_makespan)
        assert 0.0 <= o.miss_rate <= 1.0
        assert o.r1 > 0  # may be inf (never tardy)


def test_serial_vs_two_workers_bit_identical(results):
    parallel = run_algo_grid(n_jobs=2, **_KWARGS)
    assert parallel.outcomes == results.outcomes


def test_rerun_is_deterministic(results):
    again = run_algo_grid(**_KWARGS)
    assert again.outcomes == results.outcomes


def test_rankings_cover_every_combo(results):
    for by in ("makespan", "r1", "r2"):
        ranked = results.ranking(by)
        assert sorted(name for name, _ in ranked) == sorted(_COMBOS)
        scores = [score for _, score in ranked]
        if by == "makespan":
            assert scores == sorted(scores)
            assert min(scores) >= 1.0  # ratio to per-cell best
        else:
            assert scores == sorted(scores, reverse=True)


def test_tables_render_for_each_criterion(results):
    for by in ("makespan", "r1", "r2"):
        table = results.to_table(by)
        assert f"algo grid by {by}" in table
        for combo in _COMBOS:
            assert combo in table
