"""Integration: the ``python -m repro`` entry point works end-to-end."""

import subprocess
import sys

import pytest


def _run(args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestModuleEntryPoint:
    def test_solve(self):
        proc = _run(["solve", "--tasks", "10", "--seed", "1", "--realizations", "50"])
        assert proc.returncode == 0, proc.stderr
        assert "robust GA" in proc.stdout

    def test_fig4_smoke(self):
        proc = _run(["fig4", "--scale", "smoke", "--uls", "2", "--quiet"])
        assert proc.returncode == 0, proc.stderr
        assert "Fig. 4" in proc.stdout

    def test_help(self):
        proc = _run(["--help"])
        assert proc.returncode == 0
        for command in ("fig2", "fig8", "solve", "zoo", "sensitivity"):
            assert command in proc.stdout

    def test_unknown_command_fails(self):
        proc = _run(["fig9"])
        assert proc.returncode != 0

    def test_progress_goes_to_stderr(self):
        proc = _run(["fig4", "--scale", "smoke", "--uls", "2"])
        assert proc.returncode == 0
        assert "instance" in proc.stderr  # progress lines
        assert "instance" not in proc.stdout  # table only
