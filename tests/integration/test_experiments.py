"""Integration tests for the experiment drivers (smoke scale)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    run_best_eps,
    run_eps_grid,
    run_eps_one,
    run_eps_sweep,
    run_slack_effect,
)
from repro.experiments.config import SCALES


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(scale=SCALES["smoke"], seed=5)


@pytest.fixture(scope="module")
def shared_grid(cfg):
    """One small grid shared by the sweep and best-eps tests."""
    return run_eps_grid(cfg, uls=(2.0, 6.0), epsilons=(1.0, 1.5, 2.0))


class TestEpsGrid:
    def test_structure(self, cfg, shared_grid):
        assert set(shared_grid.cells) == {
            (2.0, 1.0),
            (2.0, 1.5),
            (2.0, 2.0),
            (6.0, 1.0),
            (6.0, 1.5),
            (6.0, 2.0),
        }
        for outcomes in shared_grid.cells.values():
            assert len(outcomes) == cfg.scale.n_graphs

    def test_heft_reused_across_eps(self, shared_grid):
        a = shared_grid.outcomes(2.0, 1.0)[0].heft
        b = shared_grid.outcomes(2.0, 2.0)[0].heft
        assert a is b

    def test_constraints_hold_per_cell(self, shared_grid):
        for (ul, eps), outcomes in shared_grid.cells.items():
            for o in outcomes:
                assert o.ga.expected_makespan <= eps * o.heft.expected_makespan * (
                    1 + 1e-9
                )

    def test_progress_callback(self, cfg):
        messages = []
        run_eps_grid(cfg, uls=(2.0,), epsilons=(1.0,), progress=messages.append)
        assert len(messages) == cfg.scale.n_graphs


class TestSlackEffect:
    @pytest.mark.parametrize("objective", ["makespan", "slack"])
    def test_shapes_and_table(self, cfg, objective):
        result = run_slack_effect(cfg, objective, uls=(2.0,), n_steps=4)
        assert len(result.series) == 1
        s = result.series[0]
        assert s.steps[0] == 0
        # Log ratios are zero at step 0 by construction.
        assert s.makespan[0] == 0.0
        assert s.slack[0] == 0.0
        table = result.to_table()
        assert "UL=2" in table

    def test_slack_objective_grows_slack_and_makespan(self, cfg):
        result = run_slack_effect(cfg, "slack", uls=(2.0,), n_steps=4)
        _, slack_lr, _ = result.final(2.0)
        m_lr = result.series[0].makespan[-1]
        assert slack_lr > 0.0  # slack increased vs step 0
        assert m_lr > 0.0  # and makespan rose with it (Fig. 3)

    def test_makespan_objective_shrinks_makespan(self, cfg):
        result = run_slack_effect(cfg, "makespan", uls=(2.0,), n_steps=4)
        m_lr, slack_lr, _ = result.final(2.0)
        assert m_lr < 0.0  # realized makespan fell vs step 0 (Fig. 2)
        assert slack_lr < 0.0  # slack fell with it

    def test_rejects_unknown_objective(self, cfg):
        with pytest.raises(ValueError, match="objective"):
            run_slack_effect(cfg, "fitness")

    def test_final_unknown_ul_raises(self, cfg):
        result = run_slack_effect(cfg, "slack", uls=(2.0,), n_steps=3)
        with pytest.raises(KeyError):
            result.final(9.0)


class TestEpsOne:
    def test_output_structure(self, cfg):
        result = run_eps_one(cfg, uls=(2.0,))
        assert result.uls == (2.0,)
        assert result.makespan.shape == (1,)
        assert "Fig. 4" in result.to_table()

    def test_makespan_never_worse_than_heft(self, cfg):
        # eps = 1.0 + HEFT seeding: expected makespan can't exceed HEFT's,
        # so the *expected*-makespan improvement is >= 0 per instance; the
        # realized-mean improvement may wobble but not collapse.
        result = run_eps_one(cfg, uls=(2.0,))
        assert result.makespan[0] > -0.05


class TestEpsSweepAndBestEps:
    def test_sweep_reuses_grid(self, cfg, shared_grid):
        result = run_eps_sweep(
            cfg, uls=(2.0, 6.0), epsilons=(1.0, 1.5, 2.0), grid=shared_grid
        )
        assert result.epsilons == (1.5, 2.0)
        assert set(result.r1_improvement) == {2.0, 6.0}
        assert "Fig. 5" in result.to_table("r1")
        assert "Fig. 6" in result.to_table("r2")
        with pytest.raises(ValueError):
            result.to_table("r3")

    def test_relaxing_eps_improves_r1(self, cfg, shared_grid):
        result = run_eps_sweep(
            cfg, uls=(2.0, 6.0), epsilons=(1.0, 1.5, 2.0), grid=shared_grid
        )
        # At some UL the eps=2.0 run must beat the eps=1.0 run on R1.
        best = max(result.r1_improvement[ul][-1] for ul in (2.0, 6.0))
        assert best > 0.0

    def test_best_eps_structure(self, cfg, shared_grid):
        result = run_best_eps(
            cfg,
            uls=(2.0, 6.0),
            epsilons=(1.0, 1.5, 2.0),
            r_grid=(0.0, 0.5, 1.0),
            grid=shared_grid,
        )
        for ul in (2.0, 6.0):
            assert result.best_eps_r1[ul].shape == (3,)
            assert set(result.best_eps_r1[ul]).issubset({1.0, 1.5, 2.0})
        assert "Fig. 7" in result.to_table("r1")
        assert "Fig. 8" in result.to_table("r2")

    def test_r_equal_one_prefers_small_eps(self, cfg, shared_grid):
        """With full makespan emphasis the best eps must be the smallest:
        larger budgets only ever lengthen schedules."""
        result = run_best_eps(
            cfg,
            uls=(2.0, 6.0),
            epsilons=(1.0, 1.5, 2.0),
            r_grid=(0.0, 1.0),
            grid=shared_grid,
        )
        for ul in (2.0, 6.0):
            assert result.best_eps_r1[ul][-1] == 1.0  # r = 1.0
            assert result.best_eps_r2[ul][-1] == 1.0

    def test_best_eps_decreasing_in_r(self, cfg, shared_grid):
        result = run_best_eps(
            cfg,
            uls=(2.0, 6.0),
            epsilons=(1.0, 1.5, 2.0),
            r_grid=(0.0, 0.5, 1.0),
            grid=shared_grid,
        )
        # Fig. 7 trend: eps(r=0) >= eps(r=1).
        for ul in (2.0, 6.0):
            assert result.best_eps_r1[ul][0] >= result.best_eps_r1[ul][-1]


class TestCliIntegration:
    def test_fig4_smoke(self):
        from repro.cli import run

        out = run(["fig4", "--scale", "smoke", "--uls", "2", "--quiet"])
        assert "Fig. 4" in out
        assert "R1" in out


class TestZooDriver:
    def test_zoo_metrics_complete(self, cfg):
        from repro.experiments.zoo import run_zoo

        result = run_zoo(cfg, 2.0, include_dynamic=False)
        assert result.n_instances == cfg.scale.n_graphs
        assert "online-mct" not in result.metrics
        for vals in result.metrics.values():
            assert vals["m0"] > 0
            assert 0.0 <= vals["miss_rate"] <= 1.0
        assert "Scheduler zoo" in result.to_table()

    def test_zoo_robust_ga_bounded_by_heft(self, cfg):
        from repro.experiments.zoo import run_zoo

        result = run_zoo(cfg, 2.0, include_dynamic=False)
        assert (
            result.metrics["robust-ga"]["m0"]
            <= result.metrics["heft"]["m0"] * (1 + 1e-9)
        )
