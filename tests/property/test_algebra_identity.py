"""Property tests: the component algebra reproduces the legacy classes.

The pinned contract (see ``docs/algorithms.md``): the catalogue tuples
named after HEFT, CPOP, PEFT and min-min produce schedules
**bit-identical** to the verified reference classes in
:mod:`repro.heuristics` — identical processor orders, identical
assignment vectors, and byte-equal Monte-Carlo R1/R2 report JSON — over
arbitrary problems.  The padded selection likewise reproduces
:class:`~repro.heuristics.QuantileHeftScheduler`, and every catalogue
entry yields a valid complete schedule.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import CATALOGUE, component_scheduler
from repro.heuristics import (
    CpopScheduler,
    HeftScheduler,
    MinMinScheduler,
    PeftScheduler,
    QuantileHeftScheduler,
)
from repro.io import report_to_dict
from repro.robustness.montecarlo import assess_robustness
from tests.property.strategies import problems

_LEGACY = {
    "heft": HeftScheduler,
    "cpop": CpopScheduler,
    "peft": PeftScheduler,
    "minmin": MinMinScheduler,
}


def _orders(schedule):
    return [list(map(int, order)) for order in schedule.proc_orders]


def _identical_reports(a, b):
    assert np.array_equal(a.realized_makespans, b.realized_makespans)
    assert a.expected_makespan == b.expected_makespan
    assert a.avg_slack == b.avg_slack
    assert a.r1 == b.r1
    assert a.r2 == b.r2
    assert json.dumps(report_to_dict(a), sort_keys=True) == json.dumps(
        report_to_dict(b), sort_keys=True
    )


@settings(max_examples=15, deadline=None)
@given(
    problem=problems(min_n=1, max_n=10, max_m=3),
    name=st.sampled_from(sorted(_LEGACY)),
    seed=st.integers(0, 2**31 - 1),
)
def test_component_tuple_is_bit_identical_to_legacy(problem, name, seed):
    """Same floats in, same comparisons, same schedule out — and the
    downstream Monte-Carlo reports are byte-equal JSON."""
    legacy = _LEGACY[name]().schedule(problem)
    algebra = component_scheduler(name).schedule(problem)

    assert _orders(algebra) == _orders(legacy)
    assert np.array_equal(algebra.proc_of, legacy.proc_of)

    _identical_reports(
        assess_robustness(algebra, 16, rng=seed),
        assess_robustness(legacy, 16, rng=seed),
    )


@settings(max_examples=15, deadline=None)
@given(problem=problems(min_n=1, max_n=10, max_m=3))
def test_padded_selection_is_bit_identical_to_quantile_heft(problem):
    """The ``padded`` selection generalises QuantileHeftScheduler's
    proxy-problem mechanism; at (upward, padded@q0.9, insertion, static)
    it must reproduce it exactly."""
    legacy = QuantileHeftScheduler(0.9).schedule(problem)
    algebra = component_scheduler("heft-q90").schedule(problem)
    assert _orders(algebra) == _orders(legacy)
    assert np.array_equal(algebra.proc_of, legacy.proc_of)


@settings(max_examples=10, deadline=None)
@given(problem=problems(min_n=1, max_n=8, max_m=3))
def test_every_catalogue_entry_schedules_validly(problem):
    """Each named combination places every task exactly once and keeps
    every precedence constraint (Schedule's constructor validates)."""
    for name in CATALOGUE:
        schedule = component_scheduler(name).schedule(problem)
        placed = sorted(t for order in _orders(schedule) for t in order)
        assert placed == list(range(problem.n)), name


@settings(max_examples=10, deadline=None)
@given(problem=problems(min_n=1, max_n=8, max_m=3))
def test_rerun_is_deterministic(problem):
    """Two runs of the same tuple on the same problem are identical —
    including the seeded ``random`` ranking."""
    for name in ("heft-lookahead", "random-eft", "minmin-append"):
        first = component_scheduler(name).schedule(problem)
        second = component_scheduler(name).schedule(problem)
        assert _orders(first) == _orders(second), name
