"""Property tests for serialization, heuristics, Clark and the dynamic
baseline over arbitrary problems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heuristics.cpop import CpopScheduler
from repro.heuristics.heft import HeftScheduler
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.peft import PeftScheduler
from repro.io.json_io import (
    problem_from_dict,
    problem_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.robustness.clark import clark_makespan
from repro.schedule.evaluation import evaluate
from repro.sim.dynamic import simulate_dynamic
from tests.property.strategies import problems, scheduled_problems


@settings(max_examples=60, deadline=None)
@given(problem=problems(max_n=10))
def test_problem_json_roundtrip(problem):
    back = problem_from_dict(problem_to_dict(problem))
    assert back.graph == problem.graph
    assert np.array_equal(back.uncertainty.bcet, problem.uncertainty.bcet)
    assert np.array_equal(back.uncertainty.ul, problem.uncertainty.ul)
    assert np.array_equal(
        back.platform.transfer_rates, problem.platform.transfer_rates
    )


@settings(max_examples=60, deadline=None)
@given(ps=scheduled_problems(max_n=10))
def test_schedule_json_roundtrip(ps):
    problem, schedule = ps
    back = schedule_from_dict(schedule_to_dict(schedule), problem)
    assert back == schedule
    assert np.isclose(evaluate(back).makespan, evaluate(schedule).makespan)


@settings(max_examples=50, deadline=None)
@given(problem=problems(max_n=10))
def test_every_list_scheduler_produces_valid_schedules(problem):
    """HEFT/CPOP/PEFT/min-min must handle arbitrary DAG/platform shapes."""
    for scheduler in (
        HeftScheduler(),
        CpopScheduler(),
        PeftScheduler(),
        MinMinScheduler(),
    ):
        schedule = scheduler.schedule(problem)
        ev = evaluate(schedule)
        assert ev.makespan > 0
        assert np.all(ev.slacks >= 0)
        # Partition check.
        assert sorted(
            int(v) for tasks in schedule.proc_orders for v in tasks
        ) == list(range(problem.n))


@settings(max_examples=50, deadline=None)
@given(ps=scheduled_problems(max_n=8))
def test_clark_bounds_sane(ps):
    """Analytic moments: mean >= expected-duration makespan of any single
    path is hard to check; instead verify basic sanity — nonnegative std,
    mean at least the best-case makespan, and exactness for deterministic
    problems (UL can't be 1 in the strategy, so compare against the
    expected-duration makespan as a lower-ish anchor within tolerance)."""
    _, schedule = ps
    est = clark_makespan(schedule)
    assert est.std >= 0.0
    assert np.all(est.completion_vars >= 0.0)
    # The analytic mean can never fall below the makespan computed from
    # the per-task *mean* durations by more than numerical tolerance
    # (Jensen: E[max] >= max of expectations).
    mean_durations = 0.5 * np.add(
        *schedule.problem.uncertainty.duration_bounds(schedule.proc_of)
    )
    anchor = evaluate(schedule, mean_durations).makespan
    assert est.mean >= anchor - 1e-6 * max(anchor, 1.0)


@settings(max_examples=50, deadline=None)
@given(problem=problems(max_n=10))
def test_dynamic_policy_constraints(problem):
    """The online policy respects precedence + comm + processor exclusivity
    for arbitrary problems and its expected-duration run."""
    run = simulate_dynamic(problem, problem.expected_times)
    graph = problem.graph
    platform = problem.platform
    tol = 1e-7 * max(run.makespan, 1.0)
    for u, v, d in graph.edges():
        arrival = run.finish_times[u] + platform.comm_time(
            d, int(run.proc_of[u]), int(run.proc_of[v])
        )
        assert run.start_times[v] >= arrival - tol
    for p in range(problem.m):
        tasks = np.flatnonzero(run.proc_of == p)
        order = tasks[np.argsort(run.start_times[tasks])]
        for a, b in zip(order[:-1], order[1:]):
            assert run.start_times[b] >= run.finish_times[a] - tol


@settings(max_examples=40, deadline=None)
@given(ps=scheduled_problems(max_n=10), width=st.integers(12, 100))
def test_gantt_renders_any_schedule(ps, width):
    from repro.schedule.gantt import render_gantt

    problem, schedule = ps
    chart = render_gantt(schedule, width=width)
    lines = chart.splitlines()
    assert len(lines) == problem.m + 1
    for line in lines[:-1]:
        assert len(line) == len("Pxx|") + width + 1
