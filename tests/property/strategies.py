"""Hypothesis strategies for graphs, problems and schedules."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.problem import SchedulingProblem
from repro.graph.taskgraph import TaskGraph
from repro.graph.topology import random_topological_order
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel
from repro.schedule.schedule import Schedule


@st.composite
def task_graphs(draw, min_n: int = 1, max_n: int = 10) -> TaskGraph:
    """Arbitrary DAGs: edges drawn from the upper-triangular pair set.

    Node ids are ordered, so any subset of ``u < v`` pairs is acyclic —
    shrinkage stays within valid inputs.
    """
    n = draw(st.integers(min_n, max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if pairs:
        edges = draw(
            st.lists(st.sampled_from(pairs), unique=True, max_size=min(len(pairs), 25))
        )
    else:
        edges = []
    data_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(data_seed)
    data = rng.uniform(0.0, 10.0, size=len(edges))
    return TaskGraph(n, edges, data)


@st.composite
def problems(draw, min_n: int = 1, max_n: int = 10, max_m: int = 3) -> SchedulingProblem:
    """Scheduling problems over arbitrary DAGs with random times and ULs."""
    graph = draw(task_graphs(min_n=min_n, max_n=max_n))
    m = draw(st.integers(1, max_m))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    bcet = rng.uniform(0.5, 20.0, size=(graph.n, m))
    ul = rng.uniform(1.0, 5.0, size=(graph.n, m))
    return SchedulingProblem(
        graph=graph,
        platform=Platform(m),
        uncertainty=UncertaintyModel(bcet, ul),
        name="hypothesis",
    )


@st.composite
def scheduled_problems(draw, **kwargs) -> tuple[SchedulingProblem, Schedule]:
    """A problem together with one random valid schedule for it."""
    problem = draw(problems(**kwargs))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    order = random_topological_order(problem.graph, rng)
    proc_of = rng.integers(problem.m, size=problem.n)
    return problem, Schedule.from_assignment(problem, order, proc_of)
