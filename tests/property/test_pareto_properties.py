"""Property tests for Pareto utilities and the generator moments."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moop.pareto import (
    crowding_distance,
    dominates,
    non_dominated_sort,
    pareto_front_mask,
)


@st.composite
def objective_sets(draw):
    n = draw(st.integers(1, 30))
    k = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(n, k))


@settings(max_examples=100, deadline=None)
@given(obj=objective_sets())
def test_front_mask_correctness(obj):
    mask = pareto_front_mask(obj)
    assert mask.any()  # a finite set always has a non-dominated point
    for i in range(obj.shape[0]):
        dominated_by_any = any(
            dominates(obj[j], obj[i]) for j in range(obj.shape[0]) if j != i
        )
        assert mask[i] == (not dominated_by_any)


@settings(max_examples=100, deadline=None)
@given(obj=objective_sets())
def test_non_dominated_sort_is_partition(obj):
    fronts = non_dominated_sort(obj)
    ids = sorted(i for f in fronts for i in f.tolist())
    assert ids == list(range(obj.shape[0]))


@settings(max_examples=100, deadline=None)
@given(obj=objective_sets())
def test_fronts_are_ordered(obj):
    """No member of front k+1 may dominate a member of front k, and every
    member of front k+1 is dominated by someone in fronts <= k."""
    fronts = non_dominated_sort(obj)
    for k in range(1, len(fronts)):
        earlier = np.concatenate(fronts[:k])
        for i in fronts[k]:
            assert any(dominates(obj[j], obj[i]) for j in earlier)
            assert not any(dominates(obj[i], obj[j]) for j in fronts[k - 1])


@settings(max_examples=100, deadline=None)
@given(obj=objective_sets())
def test_crowding_distance_nonnegative(obj):
    cd = crowding_distance(obj)
    assert np.all(cd >= 0.0)
    if obj.shape[0] <= 2:
        assert np.all(np.isinf(cd))


@settings(max_examples=30, deadline=None)
@given(
    mean=st.floats(1.0, 50.0),
    v_row=st.floats(0.1, 1.0),
    v_col=st.floats(0.1, 1.0),
    seed=st.integers(0, 2**31 - 1),
)
def test_gamma_gamma_grand_mean(mean, v_row, v_col, seed):
    """The two-stage gamma sampler's grand mean tracks the target."""
    from repro.platform.etc import gamma_gamma_matrix

    m = gamma_gamma_matrix(600, 12, mean, v_row, v_col, rng=seed)
    assert np.all(m > 0)
    # Loose tolerance: COV up to 1.0 with 600 rows.
    assert abs(m.mean() - mean) / mean < 0.35
