"""Round-trip property tests for the JSON wire format (repro.io.json_io).

The service cache and the cluster checkpoints both assume the JSON
codec is lossless: ``*_from_dict(*_to_dict(x))`` must reproduce every
float bit-for-bit, including the non-finite R1/R2 values a never-tardy
schedule produces, while the encoded payload itself must stay strict
JSON (no bare NaN/Infinity tokens — ``json.dumps(..., allow_nan=False)``
always succeeds).
"""

import json
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import (
    problem_fingerprint,
    problem_from_dict,
    problem_to_dict,
    report_from_dict,
    report_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.robustness.montecarlo import RobustnessReport, assess_robustness
from tests.property.strategies import problems, scheduled_problems

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
# R1/R2 are inf for never-tardy / never-missing schedules; NaN can occur
# in degenerate zero-task aggregates.  The codec must carry all of them.
robustness_values = st.one_of(
    finite, st.just(math.inf), st.just(-math.inf), st.just(math.nan)
)


@st.composite
def reports(draw) -> RobustnessReport:
    """Arbitrary reports, decoupled from any schedule: the codec must
    round-trip whatever floats the fields hold, not just reachable ones."""
    n = draw(st.integers(1, 20))
    seed = draw(st.integers(0, 2**31 - 1))
    realized = np.random.default_rng(seed).uniform(0.0, 1e6, size=n)
    realized.setflags(write=False)
    return RobustnessReport(
        expected_makespan=draw(finite),
        avg_slack=draw(finite),
        realized_makespans=realized,
        mean_makespan=draw(finite),
        mean_tardiness=draw(finite),
        miss_rate=draw(finite),
        r1=draw(robustness_values),
        r2=draw(robustness_values),
    )


def _identical(a: float, b: float) -> bool:
    """Bit-level float equality: NaN == NaN, and 0.0 != -0.0."""
    return np.float64(a).tobytes() == np.float64(b).tobytes()


@settings(max_examples=100, deadline=None)
@given(report=reports())
def test_report_roundtrip_is_bit_exact(report):
    payload = report_to_dict(report)
    json.dumps(payload, allow_nan=False)  # strict JSON, always
    restored = report_from_dict(json.loads(json.dumps(payload)))
    for field in (
        "expected_makespan",
        "avg_slack",
        "mean_makespan",
        "mean_tardiness",
        "miss_rate",
        "r1",
        "r2",
    ):
        assert _identical(getattr(restored, field), getattr(report, field))
    np.testing.assert_array_equal(
        restored.realized_makespans, report.realized_makespans
    )


@settings(max_examples=50, deadline=None)
@given(problem=problems())
def test_problem_roundtrip_is_bit_exact(problem):
    payload = problem_to_dict(problem)
    json.dumps(payload, allow_nan=False)
    restored = problem_from_dict(json.loads(json.dumps(payload)))
    assert restored.n == problem.n
    assert restored.m == problem.m
    assert list(restored.graph.edges()) == list(problem.graph.edges())
    np.testing.assert_array_equal(
        restored.uncertainty.bcet, problem.uncertainty.bcet
    )
    np.testing.assert_array_equal(
        restored.uncertainty.ul, problem.uncertainty.ul
    )
    # The content fingerprint — the service cache key — is stable across
    # the round trip, so re-submitted problems hit the same cache entry.
    assert problem_fingerprint(restored) == problem_fingerprint(problem)
    assert payload["fingerprint"] == problem_fingerprint(problem)


@settings(max_examples=50, deadline=None)
@given(item=scheduled_problems())
def test_schedule_roundtrip_preserves_assignment(item):
    problem, schedule = item
    payload = schedule_to_dict(schedule)
    json.dumps(payload, allow_nan=False)
    restored = schedule_from_dict(json.loads(json.dumps(payload)), problem)
    assert restored == schedule
    assert restored.as_pairs() == schedule.as_pairs()


@settings(max_examples=25, deadline=None)
@given(item=scheduled_problems(min_n=2, max_n=8))
def test_reachable_reports_roundtrip(item):
    """End-to-end: reports produced by the actual Monte-Carlo assessor
    (the ones the service returns) survive the codec, inf R1/R2 included."""
    problem, schedule = item
    report = assess_robustness(schedule, 20, rng=0)
    restored = report_from_dict(json.loads(json.dumps(report_to_dict(report))))
    assert _identical(restored.r1, report.r1)
    assert _identical(restored.r2, report.r2)
    assert _identical(restored.mean_makespan, report.mean_makespan)
