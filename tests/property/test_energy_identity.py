"""Property tests: energy awareness is invisible when power is null.

The pinned contract (see ``docs/energy.md``): with a null power model
and replication disabled, :class:`~repro.energy.EnergyScheduler` makes
exactly the same generator calls as
:class:`~repro.core.robust.RobustScheduler` — the returned schedules,
the Monte-Carlo R1/R2 reports and their JSON encodings are
**bit-identical**, not merely close.  Pricing any schedule with any
power model is a pure read: nothing downstream changes.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.robust import RobustScheduler
from repro.energy import EnergyScheduler, PowerModel
from repro.ga.engine import GAParams
from repro.io import report_to_dict
from repro.robustness.montecarlo import assess_robustness
from tests.property.strategies import problems, scheduled_problems

#: Tiny GA so each hypothesis example stays cheap; identity must hold
#: for any parameter set because both paths share one code object.
_PARAMS = GAParams(population_size=6, max_iterations=4, stagnation_limit=2)


def _orders(schedule):
    return [list(map(int, order)) for order in schedule.proc_orders]


def _identical_reports(a, b):
    assert np.array_equal(a.realized_makespans, b.realized_makespans)
    assert a.expected_makespan == b.expected_makespan
    assert a.avg_slack == b.avg_slack
    assert a.r1 == b.r1
    assert a.r2 == b.r2
    assert json.dumps(report_to_dict(a), sort_keys=True) == json.dumps(
        report_to_dict(b), sort_keys=True
    )


@settings(max_examples=15, deadline=None)
@given(
    problem=problems(min_n=2, max_n=8, max_m=3),
    seed=st.integers(0, 2**31 - 1),
    epsilon=st.floats(1.0, 2.0),
    use_none=st.booleans(),
)
def test_null_power_scheduler_is_bit_identical(problem, seed, epsilon, use_none):
    """``power=None`` and ``PowerModel.null`` both degenerate to the
    paper's robust path: same fitness object, same RNG stream."""
    robust = RobustScheduler(epsilon=epsilon, params=_PARAMS, rng=seed).solve(
        problem
    )
    power = None if use_none else PowerModel.null(problem.m)
    energy = EnergyScheduler(
        epsilon=epsilon, power=power, params=_PARAMS, rng=seed
    ).solve(problem)

    assert _orders(energy.schedule) == _orders(robust.schedule)
    assert np.array_equal(energy.schedule.proc_of, robust.schedule.proc_of)
    assert energy.m_heft == robust.m_heft
    assert energy.energy == 0.0

    _identical_reports(
        assess_robustness(energy.schedule, 16, rng=seed + 1),
        assess_robustness(robust.schedule, 16, rng=seed + 1),
    )


@settings(max_examples=40, deadline=None)
@given(
    ps=scheduled_problems(max_n=10),
    seed=st.integers(0, 2**31 - 1),
    active=st.floats(0.0, 5.0),
    link=st.floats(0.0, 2.0),
)
def test_pricing_is_a_pure_read(ps, seed, active, link):
    """``energy_of`` never perturbs the schedule or anything derived
    from it — the assessment after pricing equals the one before."""
    _, schedule = ps
    before = assess_robustness(schedule, 8, rng=seed)
    orders_before = _orders(schedule)

    power = PowerModel.uniform(
        schedule.m, active=active, idle=0.0, link_power=link
    )
    breakdown = power.energy_of(schedule)
    assert np.isfinite(breakdown.total)

    assert _orders(schedule) == orders_before
    _identical_reports(assess_robustness(schedule, 8, rng=seed), before)


@settings(max_examples=40, deadline=None)
@given(ps=scheduled_problems(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_null_power_prices_everything_to_zero(ps, seed):
    """The null model's total is exactly 0 J for any schedule and any
    realization matrix — the degenerate path truly has nothing to vary."""
    _, schedule = ps
    power = PowerModel.null(schedule.m)
    assert power.is_null
    assert power.energy_of(schedule).total == 0.0
    durations = schedule.realize_durations(4, rng=seed)
    assert np.all(power.batch_energies(schedule, durations) == 0.0)


@settings(max_examples=30, deadline=None)
@given(
    ps=scheduled_problems(min_n=1, max_n=10),
    seed=st.integers(0, 2**31 - 1),
)
def test_batch_energies_matches_per_realization_pricing(ps, seed):
    """The vectorized MC pricing agrees with pricing each realization
    through ``energy_of`` one at a time."""
    _, schedule = ps
    power = PowerModel.default(schedule.m)
    durations = schedule.realize_durations(3, rng=seed)
    batched = power.batch_energies(schedule, durations)
    singles = [
        power.energy_of(schedule, durations=row).total for row in durations
    ]
    assert np.allclose(batched, singles, rtol=1e-10, atol=1e-9)
