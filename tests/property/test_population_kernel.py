"""Property tests: the population GA kernel is bit-exact.

:func:`repro.ga.popeval.evaluate_population` promises results
*bit-identical* to the classic per-individual route
(``Chromosome.decode`` → :func:`repro.schedule.evaluation.evaluate`),
on both its backends (native C kernel and numpy fallback).  These
tests pin that promise with ``array_equal`` — no tolerances — across
arbitrary DAG shapes, including:

* populations of random chromosomes over hypothesis-generated problems;
* the numpy fallback called directly, so the equivalence holds even on
  hosts where the native kernel compiled (and vice versa);
* ``+inf`` durations (infeasible placements): ``inf`` makespans and
  the NaN slack entries that ``inf - inf`` produces must agree across
  backends bit-for-bit (``equal_nan``);
* the ``need_slack=False`` half-work path;
* the ``REPRO_NATIVE=0`` environment opt-out.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.chromosome import Chromosome, random_chromosome
from repro.ga.popeval import _eval_numpy, evaluate_population
from repro.graph import _native
from repro.schedule.evaluation import evaluate

from tests.property.strategies import problems


def _population(problem, size: int, seed: int) -> list[Chromosome]:
    rng = np.random.default_rng(seed)
    return [random_chromosome(problem, rng) for _ in range(size)]


def _reference(problem, chromosomes):
    """The classic per-individual route: decode + evaluate."""
    makespans = np.empty(len(chromosomes), dtype=np.float64)
    slacks = np.empty((len(chromosomes), problem.n), dtype=np.float64)
    avg = np.empty(len(chromosomes), dtype=np.float64)
    for i, c in enumerate(chromosomes):
        ev = evaluate(c.decode(problem))
        makespans[i] = ev.makespan
        slacks[i] = ev.slacks
        avg[i] = ev.avg_slack
    return makespans, slacks, avg


def _fallback(problem, chromosomes, dur=None, need_slack=True):
    """The numpy backend, called directly regardless of native availability."""
    n = problem.n
    orders = np.stack([c.order for c in chromosomes])
    procs = np.stack([c.proc_of for c in chromosomes])
    if dur is None:
        dur = problem.uncertainty.expected_times
    makespans = np.empty(len(chromosomes), dtype=np.float64)
    slacks = np.empty((len(chromosomes), n), dtype=np.float64) if need_slack else None
    _eval_numpy(problem, orders, procs, dur, need_slack, makespans, slacks)
    return makespans, slacks


@settings(max_examples=100, deadline=None)
@given(problem=problems(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_population_matches_per_individual(problem, seed):
    """Active backend vs decode+evaluate: every metric bit-identical."""
    chromosomes = _population(problem, 8, seed)
    pe = evaluate_population(problem, chromosomes)
    ref_ms, ref_slacks, ref_avg = _reference(problem, chromosomes)
    assert np.array_equal(pe.makespans, ref_ms)
    assert np.array_equal(pe.slack_matrix, ref_slacks)
    assert np.array_equal(pe.avg_slacks, ref_avg)


@settings(max_examples=100, deadline=None)
@given(problem=problems(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_numpy_fallback_matches_per_individual(problem, seed):
    """The fallback is bit-exact too, even where the native kernel runs."""
    chromosomes = _population(problem, 8, seed)
    ms, slacks = _fallback(problem, chromosomes)
    ref_ms, ref_slacks, _ = _reference(problem, chromosomes)
    assert np.array_equal(ms, ref_ms)
    assert np.array_equal(slacks, ref_slacks)


@settings(max_examples=100, deadline=None)
@given(
    problem=problems(max_n=10),
    seed=st.integers(0, 2**31 - 1),
    inf_seed=st.integers(0, 2**31 - 1),
)
def test_backends_agree_on_inf_durations(problem, seed, inf_seed):
    """Infeasible placements: ``inf`` makespans, NaN slacks — bitwise equal.

    ``evaluate`` rejects non-finite durations, so the cross-check here is
    between the two population backends (the fallback *is* the scalar
    reference kernel per individual).  Any individual touching an ``inf``
    duration must report an ``inf`` makespan on both.
    """
    chromosomes = _population(problem, 6, seed)
    rng = np.random.default_rng(inf_seed)
    dur = problem.uncertainty.expected_times.copy()
    mask = rng.random(dur.shape) < 0.3
    dur[mask] = np.inf

    pe = evaluate_population(problem, chromosomes, duration_matrix=dur)
    fb_ms, fb_slacks = _fallback(problem, chromosomes, dur=dur)
    assert np.array_equal(pe.makespans, fb_ms)
    assert np.array_equal(pe.slack_matrix, fb_slacks, equal_nan=True)

    procs = np.stack([c.proc_of for c in chromosomes])
    touches_inf = mask[np.arange(problem.n), procs].any(axis=1)
    assert np.array_equal(np.isinf(pe.makespans), touches_inf)


@settings(max_examples=60, deadline=None)
@given(problem=problems(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_need_slack_false_skips_backward_pass(problem, seed):
    """Makespans unchanged; slack genuinely absent, not silently zero."""
    chromosomes = _population(problem, 6, seed)
    full = evaluate_population(problem, chromosomes, need_slack=True)
    half = evaluate_population(problem, chromosomes, need_slack=False)
    assert np.array_equal(half.makespans, full.makespans)
    assert half.slack_matrix is None
    with pytest.raises(AttributeError, match="need_slack"):
        half.avg_slacks


def test_repro_native_opt_out_forces_fallback(monkeypatch):
    """``REPRO_NATIVE=0`` routes through numpy and stays bit-exact."""
    from tests.conftest import make_random_problem

    problem = make_random_problem(3, n=20, m=3)
    chromosomes = _population(problem, 10, seed=4)
    before = evaluate_population(problem, chromosomes)

    monkeypatch.setenv("REPRO_NATIVE", "0")
    monkeypatch.setattr(_native, "_lib", None)
    monkeypatch.setattr(_native, "_tried", False)
    assert _native.get_lib() is None
    after = evaluate_population(problem, chromosomes)

    assert np.array_equal(after.makespans, before.makespans)
    assert np.array_equal(after.slack_matrix, before.slack_matrix)


def test_empty_population():
    from tests.conftest import make_random_problem

    problem = make_random_problem(5, n=6, m=2)
    pe = evaluate_population(problem, [])
    assert len(pe) == 0
    assert pe.makespans.shape == (0,)
    assert pe.slack_matrix.shape == (0, 6)


class TestValidation:
    """Bad populations are rejected before any kernel runs."""

    def _problem(self):
        from tests.conftest import make_random_problem

        return make_random_problem(6, n=8, m=2)

    def test_rejects_non_permutation(self):
        problem = self._problem()
        good = _population(problem, 1, seed=0)[0]
        bad = Chromosome(order=np.zeros(8, dtype=np.int64), proc_of=good.proc_of)
        with pytest.raises(ValueError, match="not a permutation"):
            evaluate_population(problem, [bad])

    def test_rejects_non_topological_order(self):
        problem = self._problem()
        good = _population(problem, 1, seed=0)[0]
        if problem.graph.edge_src.size == 0:
            pytest.skip("edgeless instance cannot violate precedence")
        bad = Chromosome(order=good.order[::-1].copy(), proc_of=good.proc_of)
        with pytest.raises(ValueError, match="not a topological order"):
            evaluate_population(problem, [bad])

    def test_rejects_out_of_range_processor(self):
        problem = self._problem()
        good = _population(problem, 1, seed=0)[0]
        bad = Chromosome(
            order=good.order, proc_of=np.full(8, problem.m, dtype=np.int64)
        )
        with pytest.raises(ValueError, match="out of range"):
            evaluate_population(problem, [bad])

    def test_rejects_nan_durations(self):
        problem = self._problem()
        pop = _population(problem, 2, seed=0)
        dur = problem.uncertainty.expected_times.copy()
        dur[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN rejected"):
            evaluate_population(problem, pop, duration_matrix=dur)

    def test_rejects_wrong_length_chromosome(self):
        problem = self._problem()
        bad = Chromosome(
            order=np.arange(4, dtype=np.int64),
            proc_of=np.zeros(4, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="covers 4 tasks"):
            evaluate_population(problem, [bad])
