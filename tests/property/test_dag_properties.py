"""Property tests for the graph layer: topology invariants and generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.analysis import ArrayDag, critical_path, dag_levels
from repro.graph.generator import DagParams, random_dag
from repro.graph.topology import (
    ancestors_mask,
    descendants_mask,
    is_topological_order,
    random_topological_order,
)
from tests.property.strategies import task_graphs


@settings(max_examples=120, deadline=None)
@given(graph=task_graphs(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_random_topological_order_always_valid(graph, seed):
    order = random_topological_order(graph, seed)
    assert is_topological_order(graph, order)


@settings(max_examples=100, deadline=None)
@given(graph=task_graphs(max_n=10))
def test_ancestor_descendant_duality(graph):
    for v in range(graph.n):
        desc = descendants_mask(graph, v)
        for w in np.flatnonzero(desc):
            assert ancestors_mask(graph, int(w))[v]


@settings(max_examples=100, deadline=None)
@given(graph=task_graphs(max_n=10))
def test_levels_increase_along_edges(graph):
    levels = dag_levels(graph)
    for u, v, _ in graph.edges():
        assert levels[v] >= levels[u] + 1


@settings(max_examples=100, deadline=None)
@given(graph=task_graphs(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_critical_path_achieves_makespan(graph, seed):
    rng = np.random.default_rng(seed)
    w = rng.uniform(0.5, 10.0, graph.n)
    c = rng.uniform(0.0, 5.0, graph.num_edges)
    dag = ArrayDag.from_taskgraph(graph)
    path = dag.critical_path(w, c)
    # Sum node + edge weights along the returned path.
    total = sum(w[v] for v in path)
    lookup = {
        (int(u), int(v)): c[i]
        for i, (u, v) in enumerate(zip(graph.edge_src, graph.edge_dst))
    }
    for a, b in zip(path[:-1], path[1:]):
        total += lookup[(a, b)]
    assert np.isclose(total, dag.makespan(w, c))


@settings(max_examples=100, deadline=None)
@given(graph=task_graphs(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_top_bottom_levels_duality(graph, seed):
    """Tl on G equals Bl on the reversed graph minus the node weight."""
    rng = np.random.default_rng(seed)
    w = rng.uniform(0.5, 10.0, graph.n)
    c = rng.uniform(0.0, 5.0, graph.num_edges)
    dag = ArrayDag.from_taskgraph(graph)
    rev = ArrayDag.build(graph.n, graph.edge_dst, graph.edge_src)
    tl = dag.top_levels(w, c)
    bl_rev = rev.bottom_levels(w, c)
    assert np.allclose(tl, bl_rev - w)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 60),
    alpha=st.floats(0.4, 2.5),
    ccr=st.floats(0.0, 2.0),
    seed=st.integers(0, 2**31 - 1),
)
def test_generator_structural_invariants(n, alpha, ccr, seed):
    graph = random_dag(DagParams(n=n, alpha=alpha, ccr=ccr), seed)
    assert graph.n == n
    # Edges always point from lower to higher id (layered construction).
    if graph.num_edges:
        assert np.all(graph.edge_src < graph.edge_dst)
        assert np.all(graph.edge_data >= 0.0)
    # The canonical topological order must be valid (implies acyclicity).
    assert is_topological_order(graph, graph.topological)
    # Level structure is contiguous from 0.
    levels = dag_levels(graph)
    assert set(levels.tolist()) == set(range(int(levels.max()) + 1))
