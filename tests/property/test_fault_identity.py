"""Property tests: the fault layer is invisible when there are no faults.

The pinned contract (see ``docs/faults.md``): with the empty scenario and
the default ``rerun-static`` policy, :func:`assess_robustness_faulty`
makes exactly the same generator calls as the plain
:func:`assess_robustness` — the realized makespan samples and every
derived metric are **bit-identical**, not merely close.  Likewise the
event simulator under a fault-free environment reproduces the plain
event loop exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultEnvironment,
    FaultScenario,
    TailFault,
    assess_robustness_faulty,
    simulate_repair,
)
from repro.robustness.montecarlo import assess_robustness
from repro.sim.dynamic import simulate_semi_dynamic
from repro.sim.eventsim import simulate
from tests.property.strategies import scheduled_problems


def _identical(faulty, plain):
    assert np.array_equal(faulty.realized_makespans, plain.realized_makespans)
    assert faulty.expected_makespan == plain.expected_makespan
    assert faulty.avg_slack == plain.avg_slack
    assert faulty.mean_makespan == plain.mean_makespan
    assert faulty.mean_tardiness == plain.mean_tardiness
    assert faulty.miss_rate == plain.miss_rate
    assert faulty.r1 == plain.r1
    assert faulty.r2 == plain.r2


@settings(max_examples=60, deadline=None)
@given(
    ps=scheduled_problems(max_n=10),
    seed=st.integers(0, 2**31 - 1),
    n_realizations=st.integers(1, 12),
)
def test_zero_fault_assessment_is_bit_identical(ps, seed, n_realizations):
    _, schedule = ps
    plain = assess_robustness(schedule, n_realizations, rng=seed)
    faulty = assess_robustness_faulty(
        schedule, FaultScenario.none(), n_realizations, rng=seed
    )
    _identical(faulty, plain)
    assert faulty.n_failed == 0
    assert faulty.n_tail_outliers == 0
    assert faulty.n_redispatches == 0


@settings(max_examples=30, deadline=None)
@given(
    ps=scheduled_problems(max_n=8),
    seed=st.integers(0, 2**31 - 1),
    chunk_size=st.integers(1, 6),
)
def test_zero_fault_identity_holds_under_chunking(ps, seed, chunk_size):
    _, schedule = ps
    plain = assess_robustness(schedule, 8, rng=seed, chunk_size=chunk_size)
    faulty = assess_robustness_faulty(
        schedule, None, 8, rng=seed, chunk_size=chunk_size
    )
    _identical(faulty, plain)


@settings(max_examples=40, deadline=None)
@given(ps=scheduled_problems(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_never_firing_tail_fault_changes_nothing(ps, seed):
    """A tail fault with probability 0 consumes its own (post-base) draws
    but replaces no duration — the samples still match the plain path."""
    _, schedule = ps
    scenario = FaultScenario(faults=(TailFault(probability=0.0),))
    plain = assess_robustness(schedule, 6, rng=seed)
    faulty = assess_robustness_faulty(schedule, scenario, 6, rng=seed)
    assert np.array_equal(faulty.realized_makespans, plain.realized_makespans)
    assert faulty.n_tail_outliers == 0


@settings(max_examples=40, deadline=None)
@given(
    ps=scheduled_problems(max_n=10),
    seed=st.integers(0, 2**31 - 1),
    probability=st.floats(0.05, 1.0),
)
def test_tail_faults_only_ever_inflate_makespans(ps, seed, probability):
    """Same base draws + longer tasks ⇒ elementwise domination."""
    _, schedule = ps
    scenario = FaultScenario(faults=(TailFault(probability=probability),))
    plain = assess_robustness(schedule, 6, rng=seed)
    faulty = assess_robustness_faulty(schedule, scenario, 6, rng=seed)
    assert np.all(faulty.realized_makespans >= plain.realized_makespans)


@settings(max_examples=60, deadline=None)
@given(ps=scheduled_problems(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_neutral_environment_simulation_is_exact(ps, seed):
    """`simulate` with a fault-free environment equals `simulate` without
    one — same floats, not just close."""
    _, schedule = ps
    durations = schedule.realize_durations(1, rng=seed)[0]
    plain = simulate(schedule, durations)
    neutral = simulate(schedule, durations, env=FaultEnvironment(schedule.m))
    assert neutral.makespan == plain.makespan
    assert np.array_equal(neutral.start_times, plain.start_times)
    assert np.array_equal(neutral.finish_times, plain.finish_times)


@settings(max_examples=40, deadline=None)
@given(ps=scheduled_problems(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_fault_free_repair_matches_semi_dynamic(ps, seed):
    """Without faults the repair policy *is* the semi-dynamic baseline:
    nothing to repair, so the fixed-assignment runtime ordering decides."""
    problem, schedule = ps
    durations = schedule.realize_durations(1, rng=seed)[0]
    repair = simulate_repair(problem, schedule.proc_of, durations, None)
    semi = simulate_semi_dynamic(problem, schedule.proc_of, durations)
    assert np.array_equal(repair.proc_of, schedule.proc_of)
    assert repair.makespan == semi.makespan
    assert np.array_equal(repair.start_times, semi.start_times)
    assert np.array_equal(repair.finish_times, semi.finish_times)
