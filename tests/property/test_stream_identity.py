"""Property tests: zero contention makes the stream executor invisible.

The pinned contract (see ``docs/stream.md`` and the module docstring of
``repro.stream.scheduler``): for a single DAG job arriving at time zero
with no shedding, the online event loop evaluates exactly the float
expression ``t0 = max(proc_free[p], ready_time[v])`` over exactly the
operands :func:`repro.sim.eventsim.simulate` uses, so the makespan is
**bit-identical**, not merely close.  The only difference between the
two loops — book-ahead commits versus commit-when-free with wake
events — must therefore be unobservable whenever there is nothing to
contend with.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.eventsim import simulate
from repro.stream import NoShedding, run_stream, single_job_workload
from tests.property.strategies import problems, scheduled_problems


@settings(max_examples=50, deadline=None)
@given(problems(min_n=1, max_n=10, max_m=3), st.integers(0, 2**31 - 1))
def test_single_job_bit_identical_to_eventsim(problem, seed):
    """One job, arrival 0, HEFT plan: stream makespan == simulate()."""
    workload = single_job_workload(problem, seed=seed)
    job = workload.jobs[0]
    oracle = simulate(job.schedule, job.durations)
    result = run_stream(workload, NoShedding())
    assert result.makespan == oracle.makespan  # bit-identical, not approx
    assert result.outcomes[0].finish == oracle.makespan
    assert result.outcomes[0].n_done == problem.n
    assert result.outcomes[0].status in ("on-time", "late")
    assert result.drop_set == ()


@settings(max_examples=50, deadline=None)
@given(scheduled_problems(min_n=1, max_n=10, max_m=3), st.integers(0, 2**31 - 1))
def test_identity_holds_for_arbitrary_schedules(problem_schedule, seed):
    """The identity is a property of the loop, not of HEFT's plans."""
    problem, schedule = problem_schedule
    workload = single_job_workload(problem, seed=seed, schedule=schedule)
    job = workload.jobs[0]
    oracle = simulate(schedule, job.durations)
    result = run_stream(workload)
    assert result.makespan == oracle.makespan
    # The platform ran exactly the realized work — nothing was shed and
    # nothing ran twice (approx: accumulation order differs from np.sum).
    assert math.isclose(
        result.busy_time, float(job.durations.sum()), rel_tol=1e-12
    )


@settings(max_examples=25, deadline=None)
@given(
    problems(min_n=2, max_n=8, max_m=3),
    st.floats(0.1, 50.0, allow_nan=False, allow_infinity=False),
)
def test_late_arrival_shifts_the_single_job(problem, arrival):
    """A lone job arriving at ``a`` runs as if the clock started at ``a``."""
    workload = single_job_workload(problem, seed=3, arrival=arrival)
    job = workload.jobs[0]
    oracle = simulate(job.schedule, job.durations)
    result = run_stream(workload)
    # Shifted additions re-associate, so this is approx — the bit-level
    # claim is only made at arrival 0 (the tests above).
    assert math.isclose(
        result.makespan - arrival, oracle.makespan, rel_tol=1e-9, abs_tol=1e-9
    )
    assert result.outcomes[0].status in ("on-time", "late")
