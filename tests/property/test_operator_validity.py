"""Property tests: GA operators always produce legal chromosomes.

The paper's operators are carefully constructed to preserve the
topological-order invariant of the scheduling string; these tests verify
that for arbitrary DAGs, parents and operator randomness.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.chromosome import heft_chromosome, random_chromosome
from repro.ga.crossover import single_point_crossover
from repro.ga.mutation import legal_window, mutate
from repro.graph.topology import is_topological_order
from tests.property.strategies import problems


@settings(max_examples=120, deadline=None)
@given(problem=problems(max_n=10), seeds=st.tuples(
    st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1)
))
def test_crossover_children_valid(problem, seeds):
    pa = random_chromosome(problem, seeds[0])
    pb = random_chromosome(problem, seeds[1])
    c1, c2 = single_point_crossover(pa, pb, seeds[2])
    c1.validate(problem)
    c2.validate(problem)


@settings(max_examples=120, deadline=None)
@given(problem=problems(max_n=10), seeds=st.tuples(
    st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1)
))
def test_mutation_chain_stays_valid(problem, seeds):
    rng = np.random.default_rng(seeds[1])
    c = random_chromosome(problem, seeds[0])
    for _ in range(5):
        c = mutate(problem, c, rng)
        c.validate(problem)


@settings(max_examples=120, deadline=None)
@given(problem=problems(min_n=2, max_n=10), data=st.data())
def test_legal_window_insertions_all_valid(problem, data):
    """Every position inside the legal window yields a topological order."""
    seed = data.draw(st.integers(0, 2**31 - 1))
    c = random_chromosome(problem, seed)
    task = data.draw(st.integers(0, problem.n - 1))
    lo, hi = legal_window(problem, c.order, task)
    reduced = c.order[c.order != task]
    for pos in range(lo, hi + 1):
        candidate = np.insert(reduced, pos, task)
        assert is_topological_order(problem.graph, candidate)
    # One position outside the window (if any exists) must be invalid.
    if lo > 0:
        bad = np.insert(reduced, lo - 1, task)
        assert not is_topological_order(problem.graph, bad)
    if hi < problem.n - 1:
        bad = np.insert(reduced, hi + 1, task)
        assert not is_topological_order(problem.graph, bad)


@settings(max_examples=100, deadline=None)
@given(problem=problems(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_random_chromosome_roundtrip(problem, seed):
    """decode() then re-encode keeps per-processor orders intact."""
    c = random_chromosome(problem, seed)
    schedule = c.decode(problem)
    strings = c.assignment_strings(problem.m)
    for p in range(problem.m):
        assert schedule.proc_orders[p].tolist() == strings[p].tolist()


@settings(max_examples=60, deadline=None)
@given(problem=problems(max_n=10))
def test_heft_chromosome_roundtrip(problem):
    from repro.heuristics.heft import HeftScheduler

    heft = HeftScheduler().schedule(problem)
    c = heft_chromosome(problem, heft)
    c.validate(problem)
    assert c.decode(problem) == heft


@settings(max_examples=100, deadline=None)
@given(problem=problems(max_n=10), seeds=st.tuples(
    st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1)
))
def test_crossover_inherits_genetic_material(problem, seeds):
    """Every child gene comes from a parent: each task's processor in a
    child equals that task's processor in parent A or parent B, and each
    child's order is a merge of the parents' orders (a permutation —
    checked via validate — whose relative pairwise orders all appear in
    at least one parent is implied by the construction; here we check the
    processor-gene inheritance, which the construction does not force
    trivially)."""
    pa = random_chromosome(problem, seeds[0])
    pb = random_chromosome(problem, seeds[1])
    c1, c2 = single_point_crossover(pa, pb, seeds[2])
    for child in (c1, c2):
        for v in range(problem.n):
            assert child.proc_of[v] in (pa.proc_of[v], pb.proc_of[v])


@settings(max_examples=100, deadline=None)
@given(problem=problems(min_n=2, max_n=10), seeds=st.tuples(
    st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1)
))
def test_mutation_changes_at_most_one_task_gene(problem, seeds):
    """The window mutation moves exactly one task and reassigns exactly
    that task's processor — all other processor genes are untouched."""
    c = random_chromosome(problem, seeds[0])
    mutated = mutate(problem, c, seeds[1])
    diff = np.flatnonzero(mutated.proc_of != c.proc_of)
    assert diff.size <= 1
