"""Property tests: the two independent execution-semantics implementations
(array critical-path evaluator vs. event-driven simulator) always agree,
and batched Monte-Carlo evaluation matches per-realization evaluation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.evaluation import batch_makespans, evaluate
from repro.sim.eventsim import simulate
from tests.property.strategies import scheduled_problems


@settings(max_examples=120, deadline=None)
@given(ps=scheduled_problems(max_n=10))
def test_simulator_matches_evaluator_expected(ps):
    _, schedule = ps
    ev = evaluate(schedule)
    sim = simulate(schedule)
    assert np.isclose(sim.makespan, ev.makespan)
    assert np.allclose(sim.start_times, ev.start_times)
    assert np.allclose(sim.finish_times, ev.finish_times)


@settings(max_examples=80, deadline=None)
@given(ps=scheduled_problems(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_simulator_matches_evaluator_realized(ps, seed):
    _, schedule = ps
    durations = schedule.realize_durations(3, rng=seed)
    for d in durations:
        assert np.isclose(simulate(schedule, d).makespan, evaluate(schedule, d).makespan)


@settings(max_examples=80, deadline=None)
@given(ps=scheduled_problems(max_n=10), seed=st.integers(0, 2**31 - 1))
def test_batch_matches_sequential(ps, seed):
    _, schedule = ps
    durations = schedule.realize_durations(8, rng=seed)
    batched = batch_makespans(schedule, durations)
    singles = np.array([evaluate(schedule, d).makespan for d in durations])
    assert np.allclose(batched, singles)


@settings(max_examples=80, deadline=None)
@given(ps=scheduled_problems(max_n=10))
def test_start_times_respect_all_constraints(ps):
    """Every start time honours processor order and data arrivals."""
    problem, schedule = ps
    ev = evaluate(schedule)
    graph = problem.graph
    platform = problem.platform
    tol = 1e-7 * max(ev.makespan, 1.0)

    # Processor order: consecutive tasks do not overlap.
    for tasks in schedule.proc_orders:
        for a, b in zip(tasks[:-1], tasks[1:]):
            assert ev.start_times[b] >= ev.finish_times[a] - tol

    # Precedence + communication.
    for u, v, d in graph.edges():
        arrival = ev.finish_times[u] + platform.comm_time(
            d, int(schedule.proc_of[u]), int(schedule.proc_of[v])
        )
        assert ev.start_times[v] >= arrival - tol


@settings(max_examples=80, deadline=None)
@given(ps=scheduled_problems(max_n=10))
def test_start_times_are_tight(ps):
    """As-soon-as-ready: each start equals one of its lower bounds (no idling)."""
    problem, schedule = ps
    ev = evaluate(schedule)
    graph = problem.graph
    platform = problem.platform
    tol = 1e-7 * max(ev.makespan, 1.0)

    prev_on_proc = {}
    for tasks in schedule.proc_orders:
        for a, b in zip(tasks[:-1], tasks[1:]):
            prev_on_proc[int(b)] = int(a)

    for v in range(problem.n):
        bounds = [0.0]
        if v in prev_on_proc:
            bounds.append(float(ev.finish_times[prev_on_proc[v]]))
        for e in graph.predecessor_edge_indices(v):
            u = int(graph.edge_src[e])
            bounds.append(
                float(ev.finish_times[u])
                + platform.comm_time(
                    float(graph.edge_data[e]),
                    int(schedule.proc_of[u]),
                    int(schedule.proc_of[v]),
                )
            )
        assert abs(ev.start_times[v] - max(bounds)) <= tol
