"""Property tests for the search layer: GA, annealing, uncertainty families.

Slower-running hypothesis suites with tight example budgets — these check
that the *search machinery* (not just the operators) maintains invariants
on arbitrary problems.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import EpsilonConstraintFitness, SlackFitness
from repro.heuristics.annealing import AnnealingParams, AnnealingScheduler
from repro.heuristics.heft import HeftScheduler
from repro.schedule.evaluation import evaluate, expected_makespan
from tests.property.strategies import problems


@settings(max_examples=20, deadline=None)
@given(problem=problems(min_n=2, max_n=8), seed=st.integers(0, 2**31 - 1))
def test_ga_best_is_always_valid_and_monotone(problem, seed):
    engine = GeneticScheduler(
        SlackFitness(),
        GAParams(population_size=6, max_iterations=8, stagnation_limit=8),
        rng=seed,
    )
    result = engine.run(problem)
    result.best.chromosome.validate(problem)
    fitness = result.history.best_fitness
    assert all(b >= a - 1e-12 for a, b in zip(fitness, fitness[1:]))
    # The recorded metrics match a fresh evaluation of the best schedule.
    ev = evaluate(result.best.chromosome.decode(problem))
    assert np.isclose(ev.avg_slack, result.best.avg_slack)


@settings(max_examples=15, deadline=None)
@given(
    problem=problems(min_n=2, max_n=8),
    seed=st.integers(0, 2**31 - 1),
    epsilon=st.floats(1.0, 2.0),
)
def test_eps_constraint_ga_never_violates_budget(problem, seed, epsilon):
    m_heft = expected_makespan(HeftScheduler().schedule(problem))
    engine = GeneticScheduler(
        EpsilonConstraintFitness(epsilon, m_heft),
        GAParams(population_size=6, max_iterations=6, stagnation_limit=6),
        rng=seed,
    )
    result = engine.run(problem)
    # HEFT seeding guarantees a feasible incumbent exists, and elitism
    # guarantees the final best is at least as fit, hence feasible.
    assert result.best.makespan <= epsilon * m_heft * (1 + 1e-9)


@settings(max_examples=15, deadline=None)
@given(problem=problems(min_n=1, max_n=8), seed=st.integers(0, 2**31 - 1))
def test_annealing_returns_valid_chromosome(problem, seed):
    sa = AnnealingScheduler(
        "makespan", params=AnnealingParams(iterations=30), rng=seed
    )
    best, energy = sa.run(problem)
    best.validate(problem)
    assert np.isclose(energy, evaluate(best.decode(problem)).makespan)


@settings(max_examples=30, deadline=None)
@given(
    problem=problems(min_n=1, max_n=8),
    seed=st.integers(0, 2**31 - 1),
    family=st.sampled_from(["uniform", "beta", "bimodal"]),
)
def test_duration_families_respect_support(problem, seed, family):
    rng = np.random.default_rng(seed)
    proc_of = rng.integers(problem.m, size=problem.n)
    low, high = problem.uncertainty.duration_bounds(proc_of)
    durs = problem.uncertainty.realize_durations(
        proc_of, 50, rng=seed, family=family
    )
    assert np.all(durs >= low - 1e-9)
    assert np.all(durs <= high + 1e-9)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 20), k=st.integers(1, 10))
def test_hypervolume_monotone_under_point_addition(seed, n, k):
    """Adding points can only grow (or keep) the dominated hypervolume."""
    from repro.moop.pareto import hypervolume_2d

    rng = np.random.default_rng(seed)
    base = rng.uniform(0.0, 1.0, size=(n, 2))
    extra = rng.uniform(0.0, 1.0, size=(k, 2))
    ref = np.array([2.0, 2.0])
    hv_base = hypervolume_2d(base, ref)
    hv_more = hypervolume_2d(np.vstack([base, extra]), ref)
    assert hv_more >= hv_base - 1e-12
