"""Property tests for the paper's Theorem 3.4 and Corollary 3.5.

Theorem 3.4: delaying one task by at most its slack leaves the makespan
unchanged.  Corollary 3.5: delaying several tasks, pairwise independent in
the disjunctive graph, each by at most its own slack, does not increase
the makespan.  These are the results that justify average slack as the
robustness surrogate — the library's entire premise.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.evaluation import evaluate
from tests.property.strategies import scheduled_problems


@settings(max_examples=150, deadline=None)
@given(ps=scheduled_problems(min_n=2, max_n=10), data=st.data())
def test_theorem_3_4_delay_within_slack_keeps_makespan(ps, data):
    problem, schedule = ps
    ev = evaluate(schedule)
    task = data.draw(st.integers(0, problem.n - 1))
    frac = data.draw(st.floats(0.0, 1.0))
    slack = float(ev.slacks[task])

    durations = schedule.expected_durations().copy()
    durations[task] += frac * slack
    assert evaluate(schedule, durations).makespan <= ev.makespan + 1e-7 * max(
        ev.makespan, 1.0
    )


@settings(max_examples=150, deadline=None)
@given(ps=scheduled_problems(min_n=2, max_n=10), data=st.data())
def test_theorem_3_4_exceeding_slack_extends_makespan(ps, data):
    """Delaying a task by slack + d lengthens a longest path through it by d,
    so the new makespan is at least M + d."""
    problem, schedule = ps
    ev = evaluate(schedule)
    task = data.draw(st.integers(0, problem.n - 1))
    extra = data.draw(st.floats(0.1, 10.0))

    durations = schedule.expected_durations().copy()
    durations[task] += float(ev.slacks[task]) + extra
    new_makespan = evaluate(schedule, durations).makespan
    assert new_makespan >= ev.makespan + extra - 1e-7 * max(ev.makespan, 1.0)


def _independent_in_disjunctive(schedule, tasks):
    """Check pairwise independence (no path between any two) in G_s."""
    dag = schedule.disjunctive
    n = schedule.n
    reach = np.zeros((n, n), dtype=bool)
    for v in dag.topo[::-1]:
        v = int(v)
        for e in dag.succ_edges(v):
            w = int(dag.edge_dst[e])
            reach[v, w] = True
            reach[v] |= reach[w]
    for a in tasks:
        for b in tasks:
            if a != b and (reach[a, b] or reach[b, a]):
                return False
    return True


@settings(max_examples=100, deadline=None)
@given(ps=scheduled_problems(min_n=3, max_n=10), data=st.data())
def test_corollary_3_5_independent_delays(ps, data):
    problem, schedule = ps
    ev = evaluate(schedule)
    k = data.draw(st.integers(2, min(4, problem.n)))
    tasks = data.draw(
        st.lists(
            st.integers(0, problem.n - 1), min_size=k, max_size=k, unique=True
        )
    )
    if not _independent_in_disjunctive(schedule, tasks):
        return  # precondition of the corollary not met; nothing to check

    durations = schedule.expected_durations().copy()
    for t in tasks:
        frac = data.draw(st.floats(0.0, 1.0))
        durations[t] += frac * float(ev.slacks[t])
    assert evaluate(schedule, durations).makespan <= ev.makespan + 1e-7 * max(
        ev.makespan, 1.0
    )


@settings(max_examples=100, deadline=None)
@given(ps=scheduled_problems(min_n=1, max_n=10))
def test_slack_definition_consistency(ps):
    """slack = M - Bl - Tl >= 0, exit-of-critical-path tasks have zero slack,
    and some task is always critical."""
    _, schedule = ps
    ev = evaluate(schedule)
    assert np.all(ev.slacks >= 0.0)
    assert ev.critical_tasks.size >= 1
    # Tl + Bl <= M for every task, equality exactly on critical tasks.
    total = ev.top_levels + ev.bottom_levels
    assert np.all(total <= ev.makespan + 1e-7 * max(ev.makespan, 1.0))


@settings(max_examples=100, deadline=None)
@given(ps=scheduled_problems(min_n=1, max_n=10))
def test_makespan_monotone_in_durations(ps):
    """Increasing any durations can never shrink the makespan."""
    problem, schedule = ps
    base = schedule.expected_durations()
    rng = np.random.default_rng(0)
    bumped = base + rng.uniform(0.0, 3.0, size=base.shape)
    assert (
        evaluate(schedule, bumped).makespan
        >= evaluate(schedule, base).makespan - 1e-9
    )
