"""Extension bench: parameter sensitivity of the ε = 1.0 robustness gain.

Sweeps CCR and the DAG shape parameter (the paper holds both fixed) and
checks that the paper's conclusion — the constrained GA matches HEFT's
makespan while gaining robustness — is not an artifact of the chosen
corner of the parameter space.
"""

import numpy as np

from repro.experiments.sensitivity import run_sensitivity


def test_sensitivity_ccr(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_sensitivity(bench_config, "ccr", (0.1, 0.5, 1.0)),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    # The GA, seeded with HEFT and capped at its makespan, never does
    # substantially worse than HEFT on realized makespan at any CCR.
    assert np.all(result.makespan_gain > -0.05)
    # R1 gains at smoke scale (3 instances) are Monte-Carlo noisy; only
    # guard against a systematic collapse.  Run with
    # REPRO_BENCH_SCALE=medium for a meaningful gain estimate.
    assert result.r1_gain.mean() > -0.1


def test_sensitivity_alpha(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_sensitivity(bench_config, "alpha", (0.5, 1.0, 2.0)),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    assert np.all(result.makespan_gain > -0.05)
    assert result.values == (0.5, 1.0, 2.0)
