"""Micro-benchmarks of the library's hot kernels.

These are real timing benchmarks (multiple rounds), covering the paths
the GA and Monte-Carlo evaluation hammer: schedule construction, static
evaluation, vectorized batch makespans, one GA generation, and HEFT.
"""

import numpy as np
import pytest

from repro.core.problem import SchedulingProblem
from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import SlackFitness
from repro.graph.generator import DagParams
from repro.heuristics.heft import HeftScheduler
from repro.heuristics.random_sched import random_schedule
from repro.platform.uncertainty import UncertaintyParams
from repro.schedule.evaluation import batch_makespans, evaluate
from repro.schedule.schedule import Schedule


@pytest.fixture(scope="module")
def paper_problem():
    """A paper-sized instance: 100 tasks, 4 processors, UL = 2."""
    return SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=100),
        uncertainty_params=UncertaintyParams(mean_ul=2.0),
        rng=0,
    )


@pytest.fixture(scope="module")
def paper_schedule(paper_problem):
    return HeftScheduler().schedule(paper_problem)


def test_perf_schedule_construction(benchmark, paper_problem, paper_schedule):
    orders = [list(t) for t in paper_schedule.proc_orders]
    result = benchmark(lambda: Schedule(paper_problem, orders))
    assert result.n == 100


def test_perf_static_evaluation(benchmark, paper_problem, paper_schedule):
    durations = paper_schedule.expected_durations()
    result = benchmark(lambda: evaluate(paper_schedule, durations))
    assert result.makespan > 0


def test_perf_batch_makespans_1000(benchmark, paper_schedule):
    """The paper's Monte-Carlo unit: 1000 realizations of one schedule."""
    durations = paper_schedule.realize_durations(1000, rng=1)
    out = benchmark(lambda: batch_makespans(paper_schedule, durations))
    assert out.shape == (1000,)


def test_perf_heft_100_tasks(benchmark, paper_problem):
    schedule = benchmark(lambda: HeftScheduler().schedule(paper_problem))
    assert schedule.n == 100


def test_perf_ga_generation(benchmark, paper_problem):
    """Cost of one full GA generation at the paper's population size."""
    params = GAParams(max_iterations=1, stagnation_limit=100)

    def one_generation():
        return GeneticScheduler(SlackFitness(), params, rng=2).run(paper_problem)

    result = benchmark(one_generation)
    assert result.generations == 1


def test_perf_random_schedule_decode(benchmark, paper_problem):
    out = benchmark(lambda: random_schedule(paper_problem, 3))
    assert out.n == 100
