"""Shared benchmark fixtures.

Benchmarks default to the ``smoke`` scale so the whole suite finishes in a
few minutes; set ``REPRO_BENCH_SCALE=medium`` (or ``paper``) to rerun any
figure at higher fidelity.  Figures 5–8 all reduce the same raw
(UL x eps x instance) grid, exactly as in the paper, so the grid is
computed once per session.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_eps_grid

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")

#: Axes used by the benchmark suite (paper axes are supersets).
BENCH_ULS = (2.0, 8.0)
BENCH_EPSILONS = (1.0, 1.4, 2.0)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(scale=SCALES[BENCH_SCALE], seed=20060925)


@pytest.fixture(scope="session")
def eps_grid(bench_config):
    """The shared (UL, eps, instance) raw-outcome grid for Figs. 5-8."""
    return run_eps_grid(bench_config, BENCH_ULS, BENCH_EPSILONS)
