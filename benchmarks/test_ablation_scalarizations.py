"""Ablation A9: ε-constraint sweep vs weighted-sum sweep (front tracing).

Sec. 4 notes "a few commonly used classical methods can be employed" and
picks the ε-constraint method.  The textbook argument for that choice —
weighted sums only reach the convex hull of the front and tend to cluster
at its extremes — is made measurable here: both scalarizations trace a
front on the same instances with the same per-solve budget, compared by
hypervolume and front size.
"""

import numpy as np

from repro.experiments.workloads import make_problems
from repro.moop.epsilon_front import epsilon_front
from repro.moop.pareto import hypervolume_2d
from repro.moop.weighted_front import weighted_sum_front
from repro.utils.tables import format_table

EPS_GRID = (1.0, 1.3, 1.6, 2.0)
WEIGHT_GRID = (1.0, 0.66, 0.33, 0.0)  # same number of solves


def _run(bench_config):
    problems = make_problems(bench_config, 4.0)[:2]
    params = bench_config.ga_params()
    rows = []
    for i, problem in enumerate(problems):
        eps = epsilon_front(problem, EPS_GRID, params=params, rng=i)
        ws = weighted_sum_front(problem, WEIGHT_GRID, params=params, rng=100 + i)
        pts_eps = eps.as_minimization()
        pts_ws = ws.as_minimization()
        ref = np.vstack([pts_eps, pts_ws]).max(axis=0) * 1.1 + 1.0
        rows.append(
            [
                i,
                len(pts_eps),
                len(pts_ws),
                hypervolume_2d(pts_eps, ref),
                hypervolume_2d(pts_ws, ref),
            ]
        )
    return rows


def test_ablation_scalarizations(benchmark, bench_config):
    rows = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["inst", "|eps front|", "|ws front|", "HV(eps)", "HV(ws)"],
            rows,
            title="Ablation A9 — eps-constraint vs weighted-sum front tracing "
            "(UL=4, equal solve budgets)",
        )
    )
    for row in rows:
        # Both scalarizations produce at least one non-dominated point and
        # positive hypervolume.
        assert row[1] >= 1 and row[2] >= 1
        assert row[3] > 0 and row[4] > 0
    # The eps sweep retains at least as many distinct front points on
    # average (weighted sums cluster at extremes on non-convex fronts).
    mean_eps = np.mean([r[1] for r in rows])
    mean_ws = np.mean([r[2] for r in rows])
    assert mean_eps >= mean_ws - 1.0
