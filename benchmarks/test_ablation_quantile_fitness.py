"""Ablation A3: expectation-fed vs quantile-fed GA (paper Sec. 6 future work).

The paper's closing direction: "stochastic information about the computing
system will direct the algorithm to generate more robust schedules".  The
extension evaluates chromosomes under the q-quantile of each duration
instead of the mean.  For a fair comparison, each variant's ε-bound is
computed from the HEFT schedule's makespan *under the same timing view*.
This bench reports realized robustness for q ∈ {0.5 (≡ mean), 0.9}.
"""

import numpy as np

from repro.experiments.workloads import make_problems
from repro.ga.engine import GeneticScheduler
from repro.ga.fitness import EpsilonConstraintFitness, quantile_duration_matrix
from repro.heuristics.heft import HeftScheduler
from repro.robustness.montecarlo import assess_robustness
from repro.schedule.evaluation import evaluate
from repro.utils.tables import format_table

EPS = 1.2
QUANTILES = (0.5, 0.9)


def _run(bench_config):
    problems = make_problems(bench_config, 6.0)
    n_real = bench_config.scale.n_realizations
    rows = []
    by_q = {q: [] for q in QUANTILES}
    for i, problem in enumerate(problems):
        heft = HeftScheduler().schedule(problem)
        for q in QUANTILES:
            matrix = quantile_duration_matrix(problem, q)
            heft_q_makespan = evaluate(
                heft, matrix[np.arange(problem.n), heft.proc_of]
            ).makespan
            fitness = EpsilonConstraintFitness(EPS, heft_q_makespan)
            engine = GeneticScheduler(
                fitness, bench_config.ga_params(), rng=i, duration_matrix=matrix
            )
            schedule = engine.run(problem).schedule
            report = assess_robustness(schedule, n_real, rng=1000 + i)
            by_q[q].append((report.mean_tardiness, report.miss_rate))
            rows.append(
                [i, q, report.expected_makespan, report.mean_tardiness, report.miss_rate]
            )
    return rows, by_q


def test_ablation_quantile_fitness(benchmark, bench_config):
    rows, by_q = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["inst", "q", "M0", "mean tardiness", "miss rate"],
            rows,
            title=f"Ablation A3 — quantile-fed GA (eps={EPS}, UL=6)",
        )
    )
    # Both variants complete on every instance and produce sane metrics.
    for q in QUANTILES:
        assert len(by_q[q]) == len(by_q[QUANTILES[0]])
        for tardiness, miss in by_q[q]:
            assert tardiness >= 0.0
            assert 0.0 <= miss <= 1.0
