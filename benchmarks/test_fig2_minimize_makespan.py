"""Fig. 2: GA evolution when minimizing makespan.

Regenerates the figure's series — log ratio (vs step 0) of the incumbent's
mean realized makespan, average slack and R1, over GA steps, per
uncertainty level — and asserts the paper's qualitative shape: the GA
drives the realized makespan down, and slack and robustness fall with it
("a schedule with small makespan tends to leave little time window for
each task").
"""

import numpy as np

from benchmarks.conftest import BENCH_ULS
from repro.experiments.slack_effect import run_slack_effect


def test_fig2_minimize_makespan(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_slack_effect(
            bench_config, objective="makespan", uls=BENCH_ULS, n_steps=5
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())

    for series in result.series:
        # Log ratios anchor at 0.
        assert series.makespan[0] == 0.0
        assert series.slack[0] == 0.0
        assert series.r1[0] == 0.0

    # Averaged over ULs: makespan falls, slack falls with it (Fig. 2).
    final_makespan = np.mean([s.makespan[-1] for s in result.series])
    final_slack = np.mean([s.slack[-1] for s in result.series])
    assert final_makespan < 0.0
    assert final_slack < 0.0

    # Low-UL GA finds shorter realized makespans than high-UL GA does
    # ("when uncertainty level is low, GA can find schedules that have
    # smaller makespans").
    low = result.series[0]
    high = result.series[-1]
    assert low.makespan[-1] <= high.makespan[-1] + 0.05
