"""Fig. 6: R2 improvement over ε = 1.0.

Same sweep as Fig. 5 but for the miss-rate-based robustness; the paper
notes R2's improvements are less spread across uncertainty levels than
R1's ("R2 is less sensitive to uncertainty level").
"""

import numpy as np

from benchmarks.conftest import BENCH_EPSILONS, BENCH_ULS
from repro.experiments.eps_sweep import run_eps_sweep


def test_fig6_r2_eps_sweep(benchmark, bench_config, eps_grid):
    result = benchmark.pedantic(
        lambda: run_eps_sweep(
            bench_config, uls=BENCH_ULS, epsilons=BENCH_EPSILONS, grid=eps_grid
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table("r2"))

    # Relaxed budgets improve R2 on average.
    mean_gain_at_max_eps = np.mean(
        [result.r2_improvement[ul][-1] for ul in BENCH_ULS]
    )
    assert mean_gain_at_max_eps > 0.0

    # Cross-UL spread of R2 gains at max eps should not wildly exceed the
    # R1 spread (paper: R2 curves are less disparate across UL).
    r1_spread = abs(
        result.r1_improvement[BENCH_ULS[-1]][-1]
        - result.r1_improvement[BENCH_ULS[0]][-1]
    )
    r2_spread = abs(
        result.r2_improvement[BENCH_ULS[-1]][-1]
        - result.r2_improvement[BENCH_ULS[0]][-1]
    )
    assert r2_spread <= r1_spread + 0.5
