"""Fig. 4: improvement over HEFT at ε = 1.0.

The ε-constraint GA, forbidden from exceeding HEFT's expected makespan,
still buys robustness: R1 improves most at low UL (paper: ~13 % at
UL = 2), R2 improves less, and the realized makespan is no worse than
HEFT's.
"""

from benchmarks.conftest import BENCH_ULS
from repro.experiments.eps_one import run_eps_one


def test_fig4_improvement_over_heft(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_eps_one(bench_config, uls=(2.0, 4.0, 6.0, 8.0)),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())

    # Makespan: the GA is constrained to HEFT's expected makespan and seeded
    # with HEFT, so the realized mean cannot collapse below the baseline.
    assert all(m > -0.05 for m in result.makespan)

    # Robustness gain exists at low uncertainty (the paper's headline 13 %
    # at UL = 2 corresponds to +0.12 in log ratio; smoke scale is noisier,
    # so require it to be clearly positive).
    assert result.r1[0] > 0.02

    # The low-UL gain exceeds the high-UL gain ("the improvement is less
    # significant at larger uncertainty level").
    assert result.r1[0] > result.r1[-1] - 0.02
