"""Fig. 5: R1 improvement over ε = 1.0 as the budget relaxes.

Relaxing the makespan constraint gives the GA room to buy slack, so R1
improves over the ε = 1.0 run, with more headroom at high uncertainty.
Reduces the shared session grid (same raw runs as Figs. 6-8, as in the
paper).
"""

import numpy as np

from benchmarks.conftest import BENCH_EPSILONS, BENCH_ULS
from repro.experiments.eps_sweep import run_eps_sweep


def test_fig5_r1_eps_sweep(benchmark, bench_config, eps_grid):
    result = benchmark.pedantic(
        lambda: run_eps_sweep(
            bench_config, uls=BENCH_ULS, epsilons=BENCH_EPSILONS, grid=eps_grid
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table("r1"))

    # Relaxed budgets improve R1 on average (every UL, largest eps).
    mean_gain_at_max_eps = np.mean(
        [result.r1_improvement[ul][-1] for ul in BENCH_ULS]
    )
    assert mean_gain_at_max_eps > 0.0

    # And the improvement at the largest eps beats the smallest swept eps
    # for the high-UL series ("at large uncertainty level there is more
    # room for improvement, so increasing eps can be very effective").
    high = result.r1_improvement[BENCH_ULS[-1]]
    assert high[-1] >= high[0] - 0.1
