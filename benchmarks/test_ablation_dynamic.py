"""Ablation A5: static robust scheduling vs dynamic (online) scheduling.

The paper's introduction positions robust *static* scheduling against the
obvious alternative — assigning each ready task at runtime from the
realized state.  This ablation quantifies the comparison the paper only
argues: per instance, the realized mean makespan and the predictability
(tardiness vs the up-front promise M_0) of

* HEFT's static schedule,
* the ε = 1.0 robust GA's static schedule,
* the *semi-dynamic* policy (HEFT assignment frozen, per-processor order
  decided at runtime — the related-work [20, 21] middle ground),
* the fully online MCT policy (runtime placement and ordering).

The online policies adapt (often lower mean makespan) but their promise
is soft; the robust static schedule keeps the promise it made.
"""

import numpy as np

from repro.core.robust import RobustScheduler
from repro.experiments.workloads import make_problems
from repro.heuristics.heft import HeftScheduler
from repro.robustness.metrics import mean_relative_tardiness, miss_rate
from repro.robustness.montecarlo import assess_robustness
from repro.sim.dynamic import assess_dynamic, simulate_semi_dynamic
from repro.utils.tables import format_table


def _assess_semi(problem, proc_of, n_real, rng):
    """Monte-Carlo report of the semi-dynamic policy on one assignment."""
    gen = np.random.default_rng(rng)
    idx = np.arange(problem.n)
    low = problem.uncertainty.bcet[idx, proc_of]
    high = (2.0 * problem.uncertainty.ul[idx, proc_of] - 1.0) * low
    m0 = simulate_semi_dynamic(
        problem, proc_of, problem.uncertainty.expected_durations(proc_of)
    ).makespan
    makespans = np.empty(n_real)
    for r in range(n_real):
        makespans[r] = simulate_semi_dynamic(
            problem, proc_of, gen.uniform(low, high)
        ).makespan
    return m0, makespans


def _run(bench_config):
    problems = make_problems(bench_config, 4.0)
    n_real = bench_config.scale.n_realizations
    rows = []
    for i, problem in enumerate(problems):
        heft = HeftScheduler().schedule(problem)
        robust = RobustScheduler(
            epsilon=1.0, params=bench_config.ga_params(), rng=i
        ).solve(problem).schedule
        heft_rep = assess_robustness(heft, n_real, rng=3 * i)
        robust_rep = assess_robustness(robust, n_real, rng=3 * i + 1)
        dynamic_rep = assess_dynamic(problem, n_real, rng=3 * i + 2)
        semi_m0, semi_ms = _assess_semi(problem, heft.proc_of, n_real, 3 * i + 2)
        for name, m0, mean_m, tard, miss in [
            ("heft-static", heft_rep.expected_makespan, heft_rep.mean_makespan,
             heft_rep.mean_tardiness, heft_rep.miss_rate),
            ("robust-static", robust_rep.expected_makespan,
             robust_rep.mean_makespan, robust_rep.mean_tardiness,
             robust_rep.miss_rate),
            ("semi-dynamic", semi_m0, float(semi_ms.mean()),
             mean_relative_tardiness(semi_ms, semi_m0),
             miss_rate(semi_ms, semi_m0)),
            ("online-mct", dynamic_rep.expected_makespan,
             dynamic_rep.mean_makespan, dynamic_rep.mean_tardiness,
             dynamic_rep.miss_rate),
        ]:
            rows.append([i, name, m0, mean_m, tard, miss])
    return rows


def test_ablation_dynamic_vs_static(benchmark, bench_config):
    rows = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["inst", "policy", "M0", "mean M", "tardiness", "miss"],
            rows,
            title="Ablation A5 — static robust vs dynamic scheduling (UL=4)",
        )
    )
    # Sanity: every policy completed every instance with positive makespans.
    assert all(row[3] > 0 for row in rows)
    by_policy: dict[str, list[float]] = {}
    for row in rows:
        by_policy.setdefault(row[1], []).append(row[4])
    # All four policies produce finite tardiness samples on each instance.
    assert set(by_policy) == {
        "heft-static",
        "robust-static",
        "semi-dynamic",
        "online-mct",
    }
    assert len(set(len(v) for v in by_policy.values())) == 1
