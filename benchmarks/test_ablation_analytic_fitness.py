"""Ablation A4: slack surrogate vs direct analytic-robustness fitness.

The paper's whole mechanism rests on average slack being a good stand-in
for robustness.  With the canonical-form Clark estimator the surrogate
can be bypassed — the ε-constraint GA can minimize the *closed-form
expected tardiness* directly.  This ablation runs both fitnesses under
identical budgets and compares realized Monte-Carlo robustness.
"""

import numpy as np

from repro.experiments.workloads import make_problems
from repro.ga.analytic_fitness import AnalyticRobustnessFitness
from repro.ga.engine import GeneticScheduler
from repro.ga.fitness import EpsilonConstraintFitness
from repro.heuristics.heft import HeftScheduler
from repro.robustness.montecarlo import assess_robustness
from repro.schedule.evaluation import expected_makespan
from repro.utils.tables import format_table

EPS = 1.2


def _run(bench_config):
    problems = make_problems(bench_config, 4.0)
    n_real = bench_config.scale.n_realizations
    rows = []
    slack_tard, analytic_tard = [], []
    for i, problem in enumerate(problems):
        m_heft = expected_makespan(HeftScheduler().schedule(problem))
        for label, fitness in [
            ("slack", EpsilonConstraintFitness(EPS, m_heft)),
            ("analytic", AnalyticRobustnessFitness(EPS, m_heft)),
        ]:
            engine = GeneticScheduler(fitness, bench_config.ga_params(), rng=i)
            schedule = engine.run(problem).schedule
            report = assess_robustness(schedule, n_real, rng=500 + i)
            rows.append(
                [i, label, report.expected_makespan, report.avg_slack,
                 report.mean_tardiness, report.r1]
            )
            (slack_tard if label == "slack" else analytic_tard).append(
                report.mean_tardiness
            )
    return rows, slack_tard, analytic_tard


def test_ablation_analytic_fitness(benchmark, bench_config):
    rows, slack_tard, analytic_tard = benchmark.pedantic(
        lambda: _run(bench_config), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["inst", "fitness", "M0", "slack", "tardiness", "R1"],
            rows,
            title=f"Ablation A4 — slack surrogate vs analytic fitness (eps={EPS}, UL=4)",
        )
    )
    mean_slack = float(np.mean(slack_tard))
    mean_analytic = float(np.mean(analytic_tard))
    print(
        f"\nmean realized tardiness: slack-fitness {mean_slack:.4f}, "
        f"analytic-fitness {mean_analytic:.4f}"
    )
    # Both must respect the budget and produce sane metrics; which wins is
    # the experiment's question, so assert only sanity plus "the analytic
    # fitness is at least competitive" (within 50% of the surrogate).
    assert all(t >= 0 for t in slack_tard + analytic_tard)
    assert mean_analytic <= mean_slack * 1.5
