"""Ablation A2: HEFT seeding of the initial population (paper Sec. 4.2.2).

The paper follows Wang et al. in seeding the GA population with the HEFT
chromosome "aiming to reduce the time needed for finding a near-optimal
solution".  This ablation runs the ε = 1.0 constraint GA with and without
the seed: the seeded run is feasible by construction from generation 0,
while the unseeded run must discover a ≤ M_HEFT schedule on its own — at
equal budget it reaches feasibility less often and with less slack.
"""

import numpy as np

from dataclasses import replace

from repro.core.problem import SchedulingProblem
from repro.experiments.workloads import make_problems
from repro.ga.engine import GeneticScheduler
from repro.ga.fitness import EpsilonConstraintFitness
from repro.heuristics.heft import HeftScheduler
from repro.schedule.evaluation import expected_makespan
from repro.utils.tables import format_table


def _run(bench_config):
    problems = make_problems(bench_config, 4.0)
    params_seeded = bench_config.ga_params(seed_heft=True)
    params_unseeded = bench_config.ga_params(seed_heft=False)

    rows = []
    seeded_feasible = unseeded_feasible = 0
    seeded_slacks, unseeded_slacks = [], []
    for i, problem in enumerate(problems):
        m_heft = expected_makespan(HeftScheduler().schedule(problem))
        fitness = EpsilonConstraintFitness(1.0, m_heft)
        res_s = GeneticScheduler(fitness, params_seeded, rng=i).run(problem)
        res_u = GeneticScheduler(fitness, params_unseeded, rng=i).run(problem)
        feas_s = fitness.is_feasible(res_s.best.makespan)
        feas_u = fitness.is_feasible(res_u.best.makespan)
        seeded_feasible += feas_s
        unseeded_feasible += feas_u
        if feas_s:
            seeded_slacks.append(res_s.best.avg_slack)
        if feas_u:
            unseeded_slacks.append(res_u.best.avg_slack)
        rows.append(
            [i, m_heft, res_s.best.makespan, feas_s, res_u.best.makespan, feas_u]
        )
    return rows, seeded_feasible, unseeded_feasible, len(problems)


def test_ablation_heft_seed(benchmark, bench_config):
    rows, seeded_ok, unseeded_ok, total = benchmark.pedantic(
        lambda: _run(bench_config), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["inst", "M_HEFT", "seeded M0", "feas", "unseeded M0", "feas"],
            rows,
            title="Ablation A2 — HEFT seed on/off (eps=1.0, UL=4)",
        )
    )
    # Seeding guarantees feasibility at eps = 1.0.
    assert seeded_ok == total
    # The unseeded GA can at best match that.
    assert unseeded_ok <= seeded_ok
