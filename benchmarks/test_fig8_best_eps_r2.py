"""Fig. 8: best ε for overall performance P(s) with robustness = R2.

Same experiment as Fig. 7 with the miss-rate-based robustness; the same
monotone trend in r must hold.
"""

from benchmarks.conftest import BENCH_EPSILONS, BENCH_ULS
from repro.experiments.best_eps import run_best_eps

R_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_fig8_best_eps_r2(benchmark, bench_config, eps_grid):
    result = benchmark.pedantic(
        lambda: run_best_eps(
            bench_config,
            uls=BENCH_ULS,
            epsilons=BENCH_EPSILONS,
            r_grid=R_GRID,
            grid=eps_grid,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table("r2"))

    for ul in BENCH_ULS:
        picks = result.best_eps_r2[ul]
        assert picks[-1] == min(BENCH_EPSILONS)  # r = 1.0
        assert picks[0] >= picks[-1]  # decreasing trend in r

    # With r = 0 (robustness only), relaxing eps should pay off at high UL:
    # best eps at UL=8 should not be the minimum.
    assert result.best_eps_r2[BENCH_ULS[-1]][0] > min(BENCH_EPSILONS)
