"""Scheduler-zoo comparison bench (beyond the paper's GA-vs-HEFT)."""

from repro.experiments.zoo import run_zoo


def test_scheduler_zoo(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_zoo(bench_config, 4.0), rounds=1, iterations=1
    )
    print()
    print(result.to_table())

    metrics = result.metrics
    expected = {
        "heft",
        "cpop",
        "peft",
        "minmin",
        "heft-q0.9",
        "annealing",
        "robust-ga",
        "online-mct",
    }
    assert set(metrics) == expected

    # The robust GA at eps=1.0 is seeded and capped by HEFT, so its mean
    # expected makespan can never exceed HEFT's.
    assert metrics["robust-ga"]["m0"] <= metrics["heft"]["m0"] * (1 + 1e-9)
    # All miss rates are proper probabilities.
    for vals in metrics.values():
        assert 0.0 <= vals["miss_rate"] <= 1.0
    # HEFT-family schedulers stay within 2x of plain HEFT on expected makespan.
    for name in ("peft", "heft-q0.9"):
        assert metrics[name]["m0"] <= 2.0 * metrics["heft"]["m0"]
