"""Ablation A8: the paper's GA operators vs the variant operators.

Same budget, same seeds, same ε-constraint objective — only the variation
operators change.  Measures whether the paper's specific single-point
crossover + window mutation matter, or any precedence-preserving operator
pair does the job.
"""

import numpy as np

from repro.experiments.workloads import make_problems
from repro.ga.engine import GeneticScheduler
from repro.ga.fitness import EpsilonConstraintFitness
from repro.ga.variants import (
    adjacent_swap_mutation,
    order_only_crossover,
    rebalance_mutation,
    uniform_processor_crossover,
)
from repro.heuristics.heft import HeftScheduler
from repro.schedule.evaluation import expected_makespan
from repro.utils.tables import format_table

EPS = 1.4

VARIANTS = {
    "paper": {},
    "uniform-proc-x": {"crossover_fn": uniform_processor_crossover},
    "order-only-x": {"crossover_fn": order_only_crossover},
    "swap-mut": {"mutation_fn": adjacent_swap_mutation},
    "rebalance-mut": {"mutation_fn": rebalance_mutation},
}


def _run(bench_config):
    problems = make_problems(bench_config, 4.0)
    rows = []
    slacks: dict[str, list[float]] = {name: [] for name in VARIANTS}
    for i, problem in enumerate(problems):
        m_heft = expected_makespan(HeftScheduler().schedule(problem))
        fitness = EpsilonConstraintFitness(EPS, m_heft)
        for name, overrides in VARIANTS.items():
            engine = GeneticScheduler(
                fitness, bench_config.ga_params(), rng=i, **overrides
            )
            result = engine.run(problem)
            rows.append(
                [i, name, result.best.makespan, result.best.avg_slack,
                 result.generations]
            )
            slacks[name].append(result.best.avg_slack)
    return rows, slacks


def test_ablation_operators(benchmark, bench_config):
    rows, slacks = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["inst", "operators", "M0", "slack", "gens"],
            rows,
            title=f"Ablation A8 — operator variants (eps={EPS}, UL=4)",
        )
    )
    means = {name: float(np.mean(v)) for name, v in slacks.items()}
    print("\nmean best slack per variant:", {k: round(v, 2) for k, v in means.items()})

    # Every variant must satisfy the eps-constraint.
    for row in rows:
        assert row[2] > 0
    # The paper's full operator pair should not be dominated badly by a
    # crippled variant: its mean slack stays within 40% of the best.
    best = max(means.values())
    assert means["paper"] >= 0.6 * best
