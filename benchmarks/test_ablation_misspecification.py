"""Ablation A6: does the robustness gain survive distribution misspecification?

The paper's uncertainty model is uniform; real duration noise rarely is.
All families here share the support and the mean (so the scheduler's
expected-time view is identical); only the realized *shape* changes.  If
the slack mechanism is sound, the ε = 1.0 GA's robustness edge over HEFT
should persist under bell-shaped (beta) and bimodal noise — slack absorbs
bounded delays regardless of their distribution (Theorem 3.4 is
distribution-free).
"""

import numpy as np

from repro.core.robust import RobustScheduler
from repro.experiments.workloads import make_problems
from repro.heuristics.heft import HeftScheduler
from repro.robustness.montecarlo import assess_robustness
from repro.utils.tables import format_table

FAMILIES = ("uniform", "beta", "bimodal")


def _run(bench_config):
    problems = make_problems(bench_config, 4.0)
    n_real = bench_config.scale.n_realizations
    rows = []
    tardiness_delta = {f: [] for f in FAMILIES}
    for i, problem in enumerate(problems):
        heft = HeftScheduler().schedule(problem)
        robust = RobustScheduler(
            epsilon=1.0, params=bench_config.ga_params(), rng=i
        ).solve(problem).schedule
        for family in FAMILIES:
            heft_rep = assess_robustness(heft, n_real, rng=7 * i, family=family)
            ga_rep = assess_robustness(robust, n_real, rng=7 * i + 1, family=family)
            rows.append(
                [i, family, heft_rep.mean_tardiness, ga_rep.mean_tardiness]
            )
            tardiness_delta[family].append(
                heft_rep.mean_tardiness - ga_rep.mean_tardiness
            )
    return rows, tardiness_delta


def test_ablation_misspecification(benchmark, bench_config):
    rows, tardiness_delta = benchmark.pedantic(
        lambda: _run(bench_config), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["inst", "family", "HEFT tardiness", "GA tardiness"],
            rows,
            title="Ablation A6 — robustness gain under duration-shape "
            "misspecification (eps=1.0, UL=4)",
        )
    )
    means = {f: float(np.mean(v)) for f, v in tardiness_delta.items()}
    print("\nmean tardiness reduction (HEFT - GA) per family:", means)
    # Sanity across all families: every tardiness is finite and in range.
    for row in rows:
        assert 0.0 <= row[2] < 10.0
        assert 0.0 <= row[3] < 10.0
    # The sign of the gain should not flip dramatically across families:
    # if the GA helps under the uniform model, the non-uniform deltas must
    # not be large regressions (>= uniform delta minus noise allowance).
    for family in ("beta", "bimodal"):
        assert means[family] >= means["uniform"] - 0.05
