"""Fig. 3: GA evolution when maximizing slack.

The paper's counterpart experiment: with average slack as the objective,
slack and robustness R1 climb together while the realized makespan "rises
substantially" — slack and makespan are conflicting objectives.
"""

import numpy as np

from benchmarks.conftest import BENCH_ULS
from repro.experiments.slack_effect import run_slack_effect


def test_fig3_maximize_slack(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: run_slack_effect(
            bench_config, objective="slack", uls=BENCH_ULS, n_steps=5
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())

    final_slack = np.mean([s.slack[-1] for s in result.series])
    final_makespan = np.mean([s.makespan[-1] for s in result.series])
    final_r1 = np.mean([s.r1[-1] for s in result.series])

    # Slack rises strongly (the objective) ...
    assert final_slack > 0.25
    # ... dragging the realized makespan up with it (conflict) ...
    assert final_makespan > 0.0
    # ... and robustness co-moves with slack on average (the paper's
    # positive slack-robustness relationship).
    assert final_r1 > -0.05

    # Within each UL, slack increases monotonically along the trace
    # (elitism + slack objective).
    for series in result.series:
        assert np.all(np.diff(series.slack) >= -1e-9)
