"""Fig. 7: best ε for overall performance P(s) with robustness = R1.

The overall performance (Eqn. 9) weights makespan against robustness with
a user knob r.  The paper's shape: the optimal ε decreases as r grows
(makespan emphasis forbids buying slack) — at r = 1 the best ε is the
smallest available.
"""

from benchmarks.conftest import BENCH_EPSILONS, BENCH_ULS
from repro.experiments.best_eps import run_best_eps

R_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_fig7_best_eps_r1(benchmark, bench_config, eps_grid):
    result = benchmark.pedantic(
        lambda: run_best_eps(
            bench_config,
            uls=BENCH_ULS,
            epsilons=BENCH_EPSILONS,
            r_grid=R_GRID,
            grid=eps_grid,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table("r1"))

    for ul in BENCH_ULS:
        picks = result.best_eps_r1[ul]
        # r = 1.0 (makespan only): larger eps can only hurt, so min eps wins.
        assert picks[-1] == min(BENCH_EPSILONS)
        # Overall trend: best eps at r = 0 is at least the best eps at r = 1.
        assert picks[0] >= picks[-1]

    # Per-(ul, r) performance curves exist for every cell.
    assert len(result.mean_performance_r1) == len(BENCH_ULS) * len(R_GRID)
