"""Ablation A7: "judicious overestimation" vs the ε-constraint GA.

The paper's introduction dismisses duration overestimation as a robustness
strategy because of its utilization cost; this ablation quantifies the
comparison: quantile-padded HEFT (q = 0.75, 0.95) against plain HEFT and
the ε = 1.0 robust GA, on realized mean makespan (the utilization cost)
and tardiness (the robustness benefit).
"""

import numpy as np

from repro.core.robust import RobustScheduler
from repro.experiments.workloads import make_problems
from repro.heuristics.heft import HeftScheduler
from repro.heuristics.padded import QuantileHeftScheduler
from repro.robustness.montecarlo import assess_robustness
from repro.utils.tables import format_table


def _run(bench_config):
    problems = make_problems(bench_config, 4.0)
    n_real = bench_config.scale.n_realizations
    rows = []
    means = {}
    for i, problem in enumerate(problems):
        contenders = [
            ("heft", HeftScheduler().schedule(problem)),
            ("heft-q0.75", QuantileHeftScheduler(0.75).schedule(problem)),
            ("heft-q0.95", QuantileHeftScheduler(0.95).schedule(problem)),
            (
                "robust-ga",
                RobustScheduler(
                    epsilon=1.0, params=bench_config.ga_params(), rng=i
                ).solve(problem).schedule,
            ),
        ]
        for name, schedule in contenders:
            report = assess_robustness(schedule, n_real, rng=11 * i)
            rows.append(
                [i, name, report.expected_makespan, report.mean_makespan,
                 report.avg_slack, report.mean_tardiness]
            )
            means.setdefault(name, []).append(
                (report.mean_makespan, report.mean_tardiness)
            )
    return rows, means


def test_ablation_overestimation(benchmark, bench_config):
    rows, means = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["inst", "scheduler", "M0", "mean M", "slack", "tardiness"],
            rows,
            title="Ablation A7 — overestimation (quantile-padded HEFT) vs "
            "robust GA (eps=1.0, UL=4)",
        )
    )
    agg = {
        name: tuple(np.mean(np.asarray(v), axis=0)) for name, v in means.items()
    }
    for name, (mk, tard) in agg.items():
        print(f"  {name:11s} mean makespan {mk:9.2f}  mean tardiness {tard:.4f}")

    # Sanity: all contenders produced valid metrics on every instance.
    assert {len(v) for v in means.values()} == {len(means["heft"])}
    # The robust GA is capped at HEFT's expected makespan, so its realized
    # mean cannot exceed padded HEFT's by much more than HEFT's own.
    assert agg["robust-ga"][0] <= agg["heft"][0] * 1.1
