"""Ablation A1: ε-constraint sweep vs NSGA-II on front quality.

The paper scalarizes the bi-objective problem with the ε-constraint
method; the canonical alternative is one multi-objective (NSGA-II) run.
This ablation traces a front each way on the same instances and compares
them with standard front-quality metrics:

* 2-D hypervolume against the instance's nadir point (larger = better),
* Zitzler's coverage C(A, B) in both directions.
"""

import numpy as np

from repro.experiments.workloads import make_problems
from repro.ga.engine import GAParams
from repro.moop.epsilon_front import epsilon_front
from repro.moop.nsga2 import Nsga2Scheduler
from repro.moop.pareto import coverage, hypervolume_2d
from repro.utils.tables import format_table

EPS_GRID = (1.0, 1.4, 2.0)


def _run(bench_config):
    problems = make_problems(bench_config, 4.0)[:2]
    params = bench_config.ga_params()
    nsga_params = GAParams(
        population_size=params.population_size,
        max_iterations=params.max_iterations,
    )
    rows = []
    for i, problem in enumerate(problems):
        eps_result = epsilon_front(problem, EPS_GRID, params=params, rng=i)
        nsga = Nsga2Scheduler(nsga_params, rng=100 + i).run(problem)

        eps_pts = eps_result.as_minimization()
        nsga_pts = np.column_stack(
            [
                [ind.makespan for ind in nsga.front],
                [-ind.avg_slack for ind in nsga.front],
            ]
        )
        combined = np.vstack([eps_pts, nsga_pts])
        ref = combined.max(axis=0) * 1.1 + 1.0
        hv_eps = hypervolume_2d(eps_pts, ref)
        hv_nsga = hypervolume_2d(nsga_pts, ref)
        rows.append(
            [
                i,
                len(eps_pts),
                len(nsga_pts),
                hv_eps,
                hv_nsga,
                coverage(eps_pts, nsga_pts),
                coverage(nsga_pts, eps_pts),
            ]
        )
    return rows


def test_ablation_nsga2(benchmark, bench_config):
    rows = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["inst", "|eps front|", "|nsga front|", "HV(eps)", "HV(nsga)",
             "C(eps,nsga)", "C(nsga,eps)"],
            rows,
            title="Ablation A1 — eps-constraint sweep vs NSGA-II (UL=4)",
        )
    )
    for row in rows:
        # Both approaches trace non-trivial fronts ...
        assert row[1] >= 1 and row[2] >= 2
        # ... with positive dominated hypervolume.
        assert row[3] > 0 and row[4] > 0
    # The eps sweep (3 focused solves) should not be wholly dominated by
    # the single NSGA-II run on every instance.
    assert any(row[6] < 1.0 for row in rows)
