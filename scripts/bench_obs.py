#!/usr/bin/env python
"""Measure the observability layer's overhead on the hot kernel.

Times ``batch_makespans`` (1000 realizations, the GA/Monte-Carlo hot
path) three ways and writes the medians to ``BENCH_obs.json`` at the
repository root:

* ``baseline`` — no session, the facade guards short-circuit;
* ``disabled`` — same as baseline, named for the contract it verifies:
  instrumentation with tracing off must stay within noise (< 2%) of the
  untraced medians recorded in ``BENCH_kernels.json``;
* ``enabled`` — a live in-memory session capturing spans and metrics.

Usage::

    PYTHONPATH=src python scripts/bench_obs.py            # write JSON
    PYTHONPATH=src python scripts/bench_obs.py --no-write # print only
    PYTHONPATH=src python scripts/bench_obs.py \
        --baseline baseline_seed   # archive current numbers first
"""

from __future__ import annotations

import argparse
from pathlib import Path

from bench_util import bench_meta, median_ms, write_record

from repro import obs
from repro.core.problem import SchedulingProblem
from repro.graph.generator import DagParams
from repro.heuristics.heft import HeftScheduler
from repro.platform.uncertainty import UncertaintyParams
from repro.schedule.evaluation import batch_makespans

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print timings without updating BENCH_obs.json",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=2.0,
        help="per-mode time budget in seconds (default: 2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_obs.json",
        help="output path (default: BENCH_obs.json at the repo root)",
    )
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        help="snapshot the existing file's sections into a top-level NAME "
        "block before writing the fresh numbers (refused if NAME exists)",
    )
    args = parser.parse_args(argv)

    problem = SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=100),
        uncertainty_params=UncertaintyParams(mean_ul=2.0),
        rng=0,
    )
    schedule = HeftScheduler().schedule(problem)
    durations = schedule.realize_durations(1000, rng=1)
    kernel = lambda: batch_makespans(schedule, durations)  # noqa: E731

    results = {}
    for mode in ("baseline", "disabled", "enabled"):
        if mode == "enabled":
            obs.enable(obs.InMemorySink())
        try:
            median, rounds = median_ms(kernel, budget_s=args.budget)
        finally:
            if mode == "enabled":
                obs.disable()
        results[mode] = {"median_ms": round(median, 4), "rounds": rounds}
        print(f"{mode:10s} {median:10.4f} ms   ({rounds} rounds)")

    disabled_overhead = (
        results["disabled"]["median_ms"] / results["baseline"]["median_ms"] - 1.0
    )
    enabled_overhead = (
        results["enabled"]["median_ms"] / results["baseline"]["median_ms"] - 1.0
    )
    print(f"disabled overhead: {disabled_overhead:+.2%}")
    print(f"enabled  overhead: {enabled_overhead:+.2%}")

    record = {
        "kernel": "batch_makespans_1000",
        "modes": results,
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "meta": bench_meta(),
    }
    if not args.no_write:
        return write_record(
            args.output,
            record,
            sections=(
                "kernel", "modes", "disabled_overhead", "enabled_overhead",
                "meta",
            ),
            baseline=args.baseline,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
