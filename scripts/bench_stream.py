#!/usr/bin/env python
"""Benchmark the streaming online scheduler and record median timings.

For each of three offered-load levels the script executes the full
streamed workload (see :mod:`repro.stream`) under the no-shedding
baseline and the pruning policy, measuring

* ``run_ms`` — median wall-clock time of one complete streamed
  execution (workload pre-built outside the timed region);
* ``jobs_per_s`` / ``decisions_per_s`` — throughput in jobs retired and
  dispatch decisions taken per wall-clock second;
* ``p50_us`` / ``p99_us`` — percentiles of the per-decision scheduling
  latency (candidate scan + policy verdict + commit), pooled across
  rounds via ``run_stream(..., latency_out=...)``.

Medians go to ``BENCH_stream.json`` at the repository root.  Extra
top-level blocks (recorded baselines) are always preserved;
``--baseline NAME`` additionally snapshots the *existing* file's stream
medians into a new ``NAME`` block before the fresh numbers overwrite
them — the same mechanism as ``bench_kernels.py``.

Usage::

    PYTHONPATH=src python scripts/bench_stream.py            # write JSON
    PYTHONPATH=src python scripts/bench_stream.py --no-write # print only
    PYTHONPATH=src python scripts/bench_stream.py \
        --baseline baseline_seed   # archive current medians first
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from bench_util import bench_meta

from repro.stream import StreamParams, build_workload, make_policy, run_stream

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The three load levels of the record: nominal, the 1.5x acceptance
#: band, and 2x oversubscription.
LOADS = (1.0, 1.5, 2.0)
POLICIES = ("none", "prune")


def _bench_cell(
    workload, policy: str, *, budget_s: float, min_rounds: int = 3
) -> dict:
    """Median run time and pooled dispatch latencies of one (load, policy)."""
    run_stream(workload, make_policy(policy))  # warm caches
    times: list[float] = []
    latencies: list[float] = []
    decisions = 0
    t_stop = time.perf_counter() + budget_s
    while len(times) < min_rounds or time.perf_counter() < t_stop:
        lat: list[float] = []
        t0 = time.perf_counter()
        result = run_stream(workload, make_policy(policy), latency_out=lat)
        times.append(time.perf_counter() - t0)
        latencies.extend(lat)
        decisions = len(lat)
        if len(times) >= 500:
            break
    times.sort()
    run_s = times[len(times) // 2]
    lat_us = np.asarray(latencies, dtype=np.float64) * 1e6
    return {
        "run_ms": round(run_s * 1e3, 4),
        "rounds": len(times),
        "jobs_per_s": round(result.n_jobs / run_s, 2),
        "decisions_per_s": round(decisions / run_s, 1),
        "p50_us": round(float(np.percentile(lat_us, 50)), 3),
        "p99_us": round(float(np.percentile(lat_us, 99)), 3),
        "on_time_rate": round(result.on_time_rate, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print timings without updating BENCH_stream.json",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=2.0,
        help="per-cell time budget in seconds (default: 2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_stream.json",
        help="output path (default: BENCH_stream.json at the repo root)",
    )
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        help=(
            "snapshot the existing file's stream medians into a NAME block "
            "before writing the fresh numbers (refused if NAME exists)"
        ),
    )
    args = parser.parse_args(argv)

    results = {}
    for load in LOADS:
        workload = build_workload(StreamParams(load=load, seed=20060925))
        for policy in POLICIES:
            cell = _bench_cell(workload, policy, budget_s=args.budget)
            key = f"load_{load:g}_{policy}"
            results[key] = cell
            print(
                f"{key:18s} {cell['run_ms']:9.3f} ms/run   "
                f"{cell['jobs_per_s']:8.1f} jobs/s   "
                f"p50 {cell['p50_us']:7.2f} us   p99 {cell['p99_us']:8.2f} us"
            )

    record = {
        "stream": results,
        "meta": bench_meta(
            n_jobs=StreamParams().n_jobs,
            tasks=StreamParams().tasks,
            m=StreamParams().m,
        ),
    }
    if not args.no_write:
        previous = {}
        if args.output.exists():
            try:
                previous = json.loads(args.output.read_text())
            except (OSError, ValueError):
                previous = {}
        if args.baseline:
            if args.baseline in previous or args.baseline in record:
                print(f"error: baseline block {args.baseline!r} already exists")
                return 1
            if previous.get("stream"):
                record[args.baseline] = {
                    "stream": {
                        name: row["run_ms"]
                        for name, row in previous["stream"].items()
                    },
                    "meta": previous.get("meta", {}),
                }
        for key, value in previous.items():
            record.setdefault(key, value)
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
