#!/usr/bin/env python
"""Benchmark the energy subsystem's kernels and record median timings.

Times the pricing and replication paths of :mod:`repro.energy` on the
paper-sized instance (100 tasks, 4 processors, rng pinned) and writes
the medians to ``BENCH_energy.json`` at the repository root:

* ``energy_of`` — price one schedule (the per-champion cost);
* ``batch_energies_1000`` — price a 1000-realization Monte-Carlo
  duration matrix (the assessment-side cost);
* ``population_energies_64`` — price a 64-individual GA population
  from its assignment matrix (the per-generation fitness cost — no
  chromosome decode, so it must stay near the slack fitness);
* ``replication_build`` — build one k=1 overlap replication plan;
* ``dvfs_post_pass`` — the slowest-feasible-frequency scan;
* ``survival_verify`` — verify one plan against every 1-failure subset
  (3 realizations each; the event-loop-bound path).

Extra top-level blocks in the JSON are always preserved;
``--baseline NAME`` snapshots the existing file's sections into a new
``NAME`` block before the fresh numbers overwrite them — the same
mechanism as the other ``scripts/bench_*.py`` recorders.

Usage::

    PYTHONPATH=src python scripts/bench_energy.py            # write JSON
    PYTHONPATH=src python scripts/bench_energy.py --no-write # print only
    PYTHONPATH=src python scripts/bench_energy.py \
        --baseline baseline_seed   # archive current medians first
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from bench_util import bench_meta, median_ms, write_record

from repro.core.problem import SchedulingProblem
from repro.energy import (
    PowerModel,
    build_replication_plan,
    slowest_feasible_freqs,
    verify_survival,
)
from repro.graph.generator import DagParams
from repro.heuristics.heft import HeftScheduler
from repro.platform.uncertainty import UncertaintyParams
from repro.schedule.evaluation import expected_makespan

REPO_ROOT = Path(__file__).resolve().parent.parent

SEED = 20060925
N_TASKS = 100
POP_SIZE = 64
N_REALIZATIONS = 1000
SURVIVAL_REALIZATIONS = 3


def build_kernels() -> dict:
    """The benchmark kernels on the paper-sized instance (rng pinned)."""
    problem = SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=N_TASKS),
        uncertainty_params=UncertaintyParams(mean_ul=2.0),
        rng=0,
    )
    schedule = HeftScheduler().schedule(problem)
    power = PowerModel.default(problem.m)
    m_heft = expected_makespan(schedule)
    durations = schedule.realize_durations(N_REALIZATIONS, rng=1)

    # A deterministic population assignment matrix plus its makespans,
    # exactly what EnergyConstraintFitness hands to population_energies.
    pop_rng = np.random.default_rng(2)
    proc_of = pop_rng.integers(0, problem.m, size=(POP_SIZE, problem.n))
    proc_of[0] = schedule.proc_of
    # The makespans only feed the idle-window term; the population kernel
    # has already computed them by the time the fitness prices energy.
    makespans = np.full(POP_SIZE, m_heft)

    plan = build_replication_plan(
        problem, schedule, k=1, policy="overlap", deadline=4.0 * m_heft
    )

    return {
        "energy_of": lambda: power.energy_of(schedule),
        "batch_energies_1000": lambda: power.batch_energies(
            schedule, durations
        ),
        "population_energies_64": lambda: power.population_energies(
            problem, proc_of, makespans
        ),
        "replication_build": lambda: build_replication_plan(
            problem, schedule, k=1, policy="overlap", deadline=4.0 * m_heft
        ),
        "dvfs_post_pass": lambda: slowest_feasible_freqs(
            schedule, power, 1.3 * m_heft
        ),
        "survival_verify": lambda: verify_survival(
            plan, n_realizations=SURVIVAL_REALIZATIONS, rng=3
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print timings without updating BENCH_energy.json",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=2.0,
        help="per-kernel time budget in seconds (default: 2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_energy.json",
        help="output path (default: BENCH_energy.json at the repo root)",
    )
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        help="snapshot the existing file's sections into a top-level NAME "
        "block before writing the fresh numbers (refused if NAME exists)",
    )
    args = parser.parse_args(argv)

    kernels = build_kernels()
    results = {}
    for name, fn in kernels.items():
        median, rounds = median_ms(fn, budget_s=args.budget)
        results[name] = {"median_ms": round(median, 4), "rounds": rounds}
        print(f"{name:24s} {median:10.3f} ms   ({rounds} rounds)")

    record = {
        "kernels": results,
        "meta": bench_meta(
            workload=f"heft_n{N_TASKS}_m4_ul2",
            population=POP_SIZE,
            n_realizations=N_REALIZATIONS,
            survival_realizations=SURVIVAL_REALIZATIONS,
            seed=SEED,
        ),
    }
    if not args.no_write:
        return write_record(
            args.output,
            record,
            sections=("kernels", "meta"),
            baseline=args.baseline,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
