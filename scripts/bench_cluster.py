#!/usr/bin/env python
"""Benchmark the cluster engine's grid throughput and record it.

Runs the Fig. 4/5 grid workload (``run_eps_grid`` on a smoke-scale
config) through ``repro.cluster`` at 1, 2 and 4 workers and writes
cells-per-second plus the engine's dispatch overhead to
``BENCH_cluster.json`` at the repository root.  Like
``scripts/bench_kernels.py`` this establishes a trajectory across PRs:
run it before and after touching the scheduler, worker or checkpoint
paths and compare.

Usage::

    PYTHONPATH=src python scripts/bench_cluster.py            # write JSON
    PYTHONPATH=src python scripts/bench_cluster.py --no-write # print only
    PYTHONPATH=src python scripts/bench_cluster.py \
        --baseline baseline_seed   # archive current numbers first

Speedup over serial depends on the machine's core count; the recorded
``cpu_count`` puts the numbers in context.  The overhead benchmark
(no-op tasks through the full pool machinery) is the per-task engine
cost independent of any cores.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from bench_util import bench_meta, write_record

from repro.cluster import TaskSpec, run_tasks
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_eps_grid

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The benchmarked grid: 2 uncertainty levels x n_graphs smoke instances,
#: one epsilon — the same cell shape the figure drivers ship to workers.
ULS = (2.0, 4.0)
EPSILONS = (1.0,)
SEED = 20060925


def _noop(i: int) -> int:
    return i


def bench_grid(n_workers: int) -> dict:
    """Wall-clock one full grid at the given worker count."""
    cfg = ExperimentConfig(scale=SCALES["smoke"], seed=SEED)
    n_cells = len(ULS) * cfg.scale.n_graphs
    t0 = time.perf_counter()
    run_eps_grid(cfg, ULS, EPSILONS, n_jobs=n_workers)
    elapsed = time.perf_counter() - t0
    return {
        "n_cells": n_cells,
        "seconds": round(elapsed, 3),
        "cells_per_second": round(n_cells / elapsed, 3),
    }


def bench_overhead(n_tasks: int = 200) -> dict:
    """Per-task engine cost: no-op tasks through a 2-worker pool."""
    t0 = time.perf_counter()
    run_tasks(
        [TaskSpec(key=f"noop/{i}", fn=_noop, args=(i,)) for i in range(n_tasks)],
        n_workers=2,
    )
    elapsed = time.perf_counter() - t0
    return {
        "n_tasks": n_tasks,
        "seconds": round(elapsed, 3),
        "ms_per_task": round(elapsed / n_tasks * 1e3, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print timings without updating BENCH_cluster.json",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker counts to benchmark (default: 1 2 4)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_cluster.json",
        help="output path (default: BENCH_cluster.json at the repo root)",
    )
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        help="snapshot the existing file's sections into a top-level NAME "
        "block before writing the fresh numbers (refused if NAME exists)",
    )
    args = parser.parse_args(argv)

    grid = {}
    for n in args.workers:
        result = bench_grid(n)
        grid[str(n)] = result
        print(
            f"grid @ {n} worker(s): {result['n_cells']} cells in "
            f"{result['seconds']:.1f} s  ({result['cells_per_second']:.2f} cells/s)"
        )
    overhead = bench_overhead()
    print(
        f"engine overhead: {overhead['n_tasks']} no-op tasks, "
        f"{overhead['ms_per_task']:.2f} ms/task"
    )

    record = {
        "grid_throughput": grid,
        "engine_overhead": overhead,
        "meta": bench_meta(
            uls=list(ULS),
            epsilons=list(EPSILONS),
            scale="smoke",
            seed=SEED,
        ),
    }
    if not args.no_write:
        return write_record(
            args.output,
            record,
            sections=("grid_throughput", "engine_overhead", "meta"),
            baseline=args.baseline,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
