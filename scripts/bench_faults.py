#!/usr/bin/env python
"""Measure the fault-injection layer's cost on the assessment hot path.

Times one HEFT schedule's Monte-Carlo assessment through
``assess_robustness_faulty`` against the plain ``assess_robustness``
baseline and writes the medians to ``BENCH_faults.json`` at the
repository root:

* ``plain`` — ``assess_robustness`` (the vectorized paper path);
* ``zero_fault`` — the empty scenario under ``rerun-static``; the
  result is bit-identical to ``plain`` (pinned by the property suite)
  and its overhead is the price of fault awareness when nothing faults;
* ``tail_only`` — the ``heavy-tail`` builtin: duration-level faults
  that keep the vectorized ``batch_makespans`` kernel;
* ``outage_static`` — the ``outage-mid`` builtin under ``rerun-static``:
  time-dependent faults force the per-realization outage-aware event
  loop;
* ``failure_repair`` — the ``proc-failure`` builtin under ``repair``:
  the semi-dynamic re-dispatch policy, the most expensive path.

Event-loop modes run fewer realizations (recorded per mode); medians
are per *call*, so compare ``ms_per_realization``.

Usage::

    PYTHONPATH=src python scripts/bench_faults.py            # write JSON
    PYTHONPATH=src python scripts/bench_faults.py --no-write # print only
    PYTHONPATH=src python scripts/bench_faults.py \
        --baseline baseline_seed   # archive current numbers first
"""

from __future__ import annotations

import argparse
from pathlib import Path

from bench_util import bench_meta, median_ms, write_record

from repro.core.problem import SchedulingProblem
from repro.faults import BUILTIN_SCENARIOS, FaultScenario, assess_robustness_faulty
from repro.graph.generator import DagParams
from repro.heuristics.heft import HeftScheduler
from repro.platform.uncertainty import UncertaintyParams
from repro.robustness.montecarlo import assess_robustness

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print timings without updating BENCH_faults.json",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=2.0,
        help="per-mode time budget in seconds (default: 2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_faults.json",
        help="output path (default: BENCH_faults.json at the repo root)",
    )
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        help="snapshot the existing file's sections into a top-level NAME "
        "block before writing the fresh numbers (refused if NAME exists)",
    )
    args = parser.parse_args(argv)

    problem = SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=60),
        uncertainty_params=UncertaintyParams(mean_ul=4.0),
        rng=0,
    )
    schedule = HeftScheduler().schedule(problem)

    r_fast = 500  # vectorized modes
    r_slow = 50  # per-realization event-loop modes
    modes = {
        "plain": (
            r_fast,
            lambda: assess_robustness(schedule, r_fast, rng=1),
        ),
        "zero_fault": (
            r_fast,
            lambda: assess_robustness_faulty(
                schedule, FaultScenario.none(), r_fast, rng=1
            ),
        ),
        "tail_only": (
            r_fast,
            lambda: assess_robustness_faulty(
                schedule, BUILTIN_SCENARIOS["heavy-tail"], r_fast, rng=1
            ),
        ),
        "outage_static": (
            r_slow,
            lambda: assess_robustness_faulty(
                schedule, BUILTIN_SCENARIOS["outage-mid"], r_slow, rng=1
            ),
        ),
        "failure_repair": (
            r_slow,
            lambda: assess_robustness_faulty(
                schedule,
                BUILTIN_SCENARIOS["proc-failure"],
                r_slow,
                rng=1,
                policy="repair",
            ),
        ),
    }

    results = {}
    for name, (n_real, fn) in modes.items():
        median, rounds = median_ms(fn, budget_s=args.budget)
        results[name] = {
            "median_ms": round(median, 4),
            "n_realizations": n_real,
            "ms_per_realization": round(median / n_real, 5),
            "rounds": rounds,
        }
        print(
            f"{name:15s} {median:10.3f} ms / {n_real:4d} realizations "
            f"({median / n_real:8.4f} ms each, {rounds} rounds)"
        )

    zero_fault_overhead = (
        results["zero_fault"]["median_ms"] / results["plain"]["median_ms"] - 1.0
    )
    print(f"zero-fault overhead vs plain: {zero_fault_overhead:+.2%}")

    record = {
        "workload": "heft_n60_m4_ul4",
        "modes": results,
        "zero_fault_overhead": round(zero_fault_overhead, 4),
        "meta": bench_meta(),
    }
    if not args.no_write:
        return write_record(
            args.output,
            record,
            sections=("workload", "modes", "zero_fault_overhead", "meta"),
            baseline=args.baseline,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
