"""Shared helpers for the ``scripts/bench_*.py`` recorders.

Every benchmark script writes a ``BENCH_*.json`` record at the repo
root and wants the same three things:

* :func:`median_ms` — median wall-clock timing over a time budget;
* :func:`bench_meta` — the environment block every record must carry
  (python/numpy versions, ``cpu_count``, native-kernel and OpenMP
  availability — on a 1-core CI box the parallel speedup numbers mean
  nothing without it);
* :func:`write_record` — the snapshot-preserving writer: extra
  top-level blocks in the existing file are always kept verbatim, and
  ``--baseline NAME`` archives the existing file's live sections into a
  new ``NAME`` block before the fresh numbers overwrite them, so a
  before/after pair survives in one file (refused if ``NAME`` exists).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np


def median_ms(fn, *, budget_s: float = 2.0, min_rounds: int = 5) -> tuple[float, int]:
    """Median wall-clock milliseconds of ``fn()`` over a time budget."""
    fn()  # warm caches, lazy structures, and the optional native kernel
    times: list[float] = []
    t_stop = time.perf_counter() + budget_s
    while len(times) < min_rounds or time.perf_counter() < t_stop:
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
        if len(times) >= 10_000:
            break
    times.sort()
    return times[len(times) // 2] * 1e3, len(times)


def bench_meta(**extra) -> dict:
    """The environment block every ``BENCH_*.json`` record carries."""
    from repro.graph import _native

    lib = _native.get_lib()
    meta = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "native_kernel": lib is not None,
        "openmp": bool(lib is not None and _native.has_openmp()),
    }
    meta.update(extra)
    return meta


def write_record(
    output: Path,
    record: dict,
    *,
    sections: tuple[str, ...],
    baseline: str | None = None,
) -> int:
    """Write *record* to *output*, preserving history.

    *sections* names the record's live top-level blocks; with
    ``baseline`` they are snapshotted **verbatim** from the existing
    file into ``record[baseline]`` before being overwritten.  All other
    existing top-level blocks are carried over unchanged.  Returns a
    process exit code (1 = the baseline name is already taken).
    """
    previous = {}
    if output.exists():
        try:
            previous = json.loads(output.read_text())
        except (OSError, ValueError):
            previous = {}
    if baseline:
        if baseline in previous or baseline in record:
            print(f"error: baseline block {baseline!r} already exists")
            return 1
        snapshot = {
            key: previous[key] for key in sections if key in previous
        }
        if snapshot:
            record[baseline] = snapshot
    for key, value in previous.items():
        record.setdefault(key, value)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0
