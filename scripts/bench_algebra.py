#!/usr/bin/env python
"""Benchmark the component-algebra scheduler and record median timings.

Times :mod:`repro.algebra` on the paper-sized instance (100 tasks, 4
processors, rng pinned) and writes the medians to ``BENCH_algebra.json``
at the repository root:

* ``heft_tuple`` / ``cpop_tuple`` / ``peft_tuple`` / ``minmin_tuple`` —
  the four legacy-equivalent component tuples (each bit-identical to
  its reference class, so these ARE the legacy costs plus dispatch
  overhead);
* ``heft_legacy`` — the reference :class:`HeftScheduler` itself, the
  yardstick for that dispatch overhead;
* ``lookahead`` — ``heft-lookahead``, the most expensive selection axis
  (per-candidate place / probe-children / unplace);
* ``padded_q90`` — ``heft-q90``, the proxy-problem padding path;
* ``rank_context`` — priority computation alone for the OCT ranking
  (the dominant non-loop cost).

Extra top-level blocks in the JSON are always preserved;
``--baseline NAME`` snapshots the existing file's sections into a new
``NAME`` block before the fresh numbers overwrite them — the same
mechanism as the other ``scripts/bench_*.py`` recorders.

Usage::

    PYTHONPATH=src python scripts/bench_algebra.py            # write JSON
    PYTHONPATH=src python scripts/bench_algebra.py --no-write # print only
    PYTHONPATH=src python scripts/bench_algebra.py \
        --baseline baseline_seed   # archive current medians first
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from bench_util import bench_meta, median_ms, write_record

from repro.algebra import Components, component_scheduler, rank_context
from repro.core.problem import SchedulingProblem
from repro.graph.generator import DagParams
from repro.heuristics.heft import HeftScheduler
from repro.platform.uncertainty import UncertaintyParams

REPO_ROOT = Path(__file__).resolve().parent.parent

SEED = 20060925
N_TASKS = 100


def build_kernels() -> dict:
    """The benchmark kernels on the paper-sized instance (rng pinned)."""
    problem = SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=N_TASKS),
        uncertainty_params=UncertaintyParams(mean_ul=2.0),
        rng=0,
    )
    oct_components = Components(ranking="oct", selection="oct",
                                insertion="insertion", order="ready")

    def solve(name):
        scheduler = component_scheduler(name)
        return lambda: scheduler.schedule(problem)

    return {
        "heft_tuple": solve("heft"),
        "cpop_tuple": solve("cpop"),
        "peft_tuple": solve("peft"),
        "minmin_tuple": solve("minmin"),
        "heft_legacy": lambda: HeftScheduler().schedule(problem),
        "lookahead": solve("heft-lookahead"),
        "padded_q90": solve("heft-q90"),
        "rank_context": lambda: rank_context(oct_components, problem),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print timings without updating BENCH_algebra.json",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=2.0,
        help="per-kernel time budget in seconds (default: 2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_algebra.json",
        help="output path (default: BENCH_algebra.json at the repo root)",
    )
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        help="snapshot the existing file's sections into a top-level NAME "
        "block before writing the fresh numbers (refused if NAME exists)",
    )
    args = parser.parse_args(argv)

    kernels = build_kernels()
    results = {}
    for name, fn in kernels.items():
        median, rounds = median_ms(fn, budget_s=args.budget)
        results[name] = {"median_ms": round(median, 4), "rounds": rounds}
        print(f"{name:24s} {median:10.3f} ms   ({rounds} rounds)")

    record = {
        "kernels": results,
        "meta": bench_meta(
            workload=f"algebra_n{N_TASKS}_m4_ul2",
            seed=SEED,
        ),
    }
    if not args.no_write:
        return write_record(
            args.output,
            record,
            sections=("kernels", "meta"),
            baseline=args.baseline,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
