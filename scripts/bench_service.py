#!/usr/bin/env python
"""Benchmark the scheduler service and record it.

Measures request throughput and latency percentiles against a live
in-process :class:`~repro.service.SchedulerService` — the same code
path ``repro serve`` runs, minus process startup — and writes the
numbers to ``BENCH_service.json`` at the repository root.  Four
scenarios:

* ``heft_uncached`` — distinct fast-tier requests (every one computes);
* ``heft_cached``   — one problem repeated (pure cache-path cost:
  transport + lookup, the service's fixed per-request overhead);
* ``ga_uncached``   — distinct GA-tier requests through the solver
  backend, at 1 and (when the machine has the cores) 4 workers;
* ``ga_cached``     — the GA repeat, which costs the same as a HEFT
  repeat (the cache does not care what it stores).

A separate ``warm_start`` section measures the structural warm-start
cache on repeat traffic: a batch of distinct instances is solved once
(populating the server's warm-start store), then re-submitted with a
different seed — a result-cache miss, so the GA genuinely re-runs.
The ``warm`` pass lets the store seed each re-solve with the best
chromosome of the earlier run; the ``cold`` control runs the identical
traffic with ``warm_start=false``.  The stagnation-driven GA
configuration makes ``ga_generations`` the generations-to-converge
count, so the recorded ``mean_generations`` pair is the repeat-traffic
saving, machine-checkable from the JSON.

A ``sharding`` section measures the sharded deployment: the same
uncached GA traffic is pushed through a :class:`Coordinator` with 1 and
4 TCP shards (one OS process each, one GA slot per shard) from
concurrent client connections.  The recorded ``speedup_1_to_4`` is the
multi-node scaling headline; ``degraded`` must stay 0 (nothing was
shed, the comparison is honest).

Like ``scripts/bench_cluster.py`` this establishes a trajectory across
PRs: run it before and after touching the service, protocol or cache
paths and compare.  Extra top-level blocks in the JSON are always
preserved; ``--baseline NAME`` additionally snapshots the *existing*
file's sections into a new ``NAME`` block before the fresh numbers
overwrite them, so a before/after pair survives in one file.

Usage::

    PYTHONPATH=src python scripts/bench_service.py            # write JSON
    PYTHONPATH=src python scripts/bench_service.py --no-write # print only
    PYTHONPATH=src python scripts/bench_service.py \
        --baseline baseline_pre_sharding   # archive current numbers first
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from bench_util import bench_meta

from repro.core.problem import SchedulingProblem
from repro.graph.generator import DagParams
from repro.platform.uncertainty import UncertaintyParams
from repro.service import (
    Coordinator,
    CoordinatorConfig,
    SchedulerService,
    ServiceClient,
    ServiceConfig,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

SEED = 20060925
N_TASKS = 40
N_REALIZATIONS = 200
GA_OVERRIDES = {"max_iterations": 20, "stagnation_limit": 20}

# The warm-start scenario needs a stagnation-driven stop so that
# ``ga_generations`` measures generations-to-converge rather than a cap.
WARM_GA_OVERRIDES = {"max_iterations": 200, "stagnation_limit": 15}
WARM_N_PROBLEMS = 5
WARM_N_REALIZATIONS = 50


def _problem(seed: int) -> SchedulingProblem:
    return SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=N_TASKS),
        uncertainty_params=UncertaintyParams(mean_ul=2.0),
        rng=seed,
    )


class _Server:
    """A service on a background thread, bound to an ephemeral port."""

    def __init__(self, workers: int) -> None:
        self.service = SchedulerService(
            ServiceConfig(port=0, workers=workers, ga_queue_limit=64)
        )
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            await self.service.start()
            self._ready.set()
            await self.service._shutdown_event.wait()
            await asyncio.sleep(0.05)
            await self.service.aclose()

        asyncio.run(main())

    def __enter__(self) -> "_Server":
        self._thread.start()
        self._ready.wait(timeout=30)
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            with ServiceClient("127.0.0.1", self.service.port) as client:
                client.shutdown()
        except OSError:
            pass
        self._thread.join(timeout=30)


def _timed(client: ServiceClient, payloads: list[dict], **kwargs) -> dict:
    latencies = []
    t0 = time.perf_counter()
    for payload in payloads:
        t1 = time.perf_counter()
        client.solve(payload, **kwargs)
        latencies.append(time.perf_counter() - t1)
    elapsed = time.perf_counter() - t0
    lat = np.asarray(latencies)
    return {
        "n_requests": len(payloads),
        "seconds": round(elapsed, 3),
        "req_per_second": round(len(payloads) / elapsed, 2),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 3),
    }


def bench_tier(workers: int, n_heft: int, n_ga: int) -> dict:
    from repro.io import problem_to_dict

    distinct = [problem_to_dict(_problem(SEED + i)) for i in range(max(n_heft, n_ga))]
    repeated = distinct[0]
    out: dict = {}
    with _Server(workers) as server:
        with ServiceClient("127.0.0.1", server.service.port) as client:
            out["heft_uncached"] = _timed(
                client, distinct[:n_heft], solver="heft",
                seed=SEED, n_realizations=N_REALIZATIONS,
            )
            out["heft_cached"] = _timed(
                client, [repeated] * n_heft, solver="heft",
                seed=SEED, n_realizations=N_REALIZATIONS,
            )
            out["ga_uncached"] = _timed(
                client, distinct[:n_ga], solver="ga", epsilon=1.2,
                seed=SEED, n_realizations=N_REALIZATIONS, ga=GA_OVERRIDES,
            )
            out["ga_cached"] = _timed(
                client, [distinct[0]] * n_heft, solver="ga", epsilon=1.2,
                seed=SEED, n_realizations=N_REALIZATIONS, ga=GA_OVERRIDES,
            )
    return out


class _ShardedServer:
    """A coordinator + N TCP shard processes on a background thread."""

    def __init__(self, shards: int) -> None:
        self.coordinator = Coordinator(
            CoordinatorConfig(
                port=0,
                shards=shards,
                transport="tcp",
                workers=1,
                ga_queue_limit=256,
            )
        )
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            await self.coordinator.start()
            self._ready.set()
            await self.coordinator._shutdown_event.wait()
            await asyncio.sleep(0.05)
            await self.coordinator.aclose()

        asyncio.run(main())

    def __enter__(self) -> "_ShardedServer":
        self._thread.start()
        self._ready.wait(timeout=60)
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            with ServiceClient("127.0.0.1", self.coordinator.port) as client:
                client.shutdown()
        except OSError:
            pass
        self._thread.join(timeout=60)


def bench_sharding(
    shard_counts: list[int], n_ga: int, concurrency: int
) -> dict:
    """Uncached-GA throughput through the coordinator at each shard count.

    Every request is a distinct instance with ``warm_start=false``, so
    each one is a genuine GA solve; ``concurrency`` client threads keep
    the shards saturated.  Shedding would make the comparison dishonest,
    so the per-shard queue limit is high and ``degraded`` is recorded
    (and must be 0).
    """
    from repro.io import problem_to_dict

    payloads = [problem_to_dict(_problem(SEED + 500 + i)) for i in range(n_ga)]
    out: dict = {}
    for shards in shard_counts:
        with _ShardedServer(shards) as server:
            port = server.coordinator.port
            lock = threading.Lock()
            pending = list(range(n_ga))
            latencies: list[float] = []
            degraded = 0

            def worker() -> None:
                nonlocal degraded
                with ServiceClient("127.0.0.1", port, retry_s=5.0) as client:
                    while True:
                        with lock:
                            if not pending:
                                return
                            index = pending.pop()
                        t1 = time.perf_counter()
                        response = client.solve(
                            payloads[index],
                            solver="ga",
                            epsilon=1.2,
                            seed=SEED,
                            n_realizations=N_REALIZATIONS,
                            ga=GA_OVERRIDES,
                            warm_start=False,
                        )
                        dt = time.perf_counter() - t1
                        with lock:
                            latencies.append(dt)
                            degraded += 1 if response.get("degraded") else 0

            threads = [
                threading.Thread(target=worker) for _ in range(concurrency)
            ]
            t0 = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - t0
            with ServiceClient("127.0.0.1", port) as client:
                status = client.status()
        lat = np.asarray(latencies)
        out[str(shards)] = {
            "n_requests": n_ga,
            "concurrency": concurrency,
            "seconds": round(elapsed, 3),
            "req_per_second": round(n_ga / elapsed, 2),
            "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
            "p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 3),
            "degraded": degraded,
            "routing": {
                key: status["routing"][key]
                for key in ("home", "stolen", "failover")
            },
            "per_shard_routed": {
                s["node_id"]: s["routed"] for s in status["shards"]
            },
        }
    counts = sorted(int(k) for k in out)
    low, high = str(counts[0]), str(counts[-1])
    if low != high and out[low]["req_per_second"] > 0:
        out[f"speedup_{low}_to_{high}"] = round(
            out[high]["req_per_second"] / out[low]["req_per_second"], 2
        )
    cores = os.cpu_count() or 1
    out["cpu_count"] = cores
    if cores < counts[-1]:
        # Shards are OS processes; scaling tops out at the core count.
        # On a 1-core box the section still proves routing/stealing
        # correctness (even per_shard_routed, zero degraded), but the
        # speedup headline needs >= `shards` cores to mean anything.
        out["note"] = (
            f"only {cores} CPU core(s): {counts[-1]} shard processes "
            "cannot exceed single-core GA throughput; speedup reflects "
            "the hardware, not the deployment"
        )
    return out


def bench_warm_start(n_problems: int = WARM_N_PROBLEMS) -> dict:
    """Repeat-traffic warm-start scenario (see module docstring).

    Each mode gets its own fresh server so the cold control cannot see
    the warm pass's store or result cache.
    """
    from repro.io import problem_to_dict

    payloads = [
        problem_to_dict(_problem(SEED + 100 + i)) for i in range(n_problems)
    ]
    out: dict = {}
    for mode, warm in (("cold", False), ("warm", True)):
        with _Server(1) as server:
            with ServiceClient("127.0.0.1", server.service.port) as client:
                kwargs = dict(
                    solver="ga",
                    epsilon=1.2,
                    n_realizations=WARM_N_REALIZATIONS,
                    ga=WARM_GA_OVERRIDES,
                    warm_start=warm,
                )
                # First pass populates the warm-start store (warm mode only).
                for payload in payloads:
                    client.solve(payload, seed=SEED, **kwargs)
                # Repeat pass: same instances, new seed — a result-cache
                # miss, so the GA actually re-runs.
                generations = []
                seeded = 0
                t0 = time.perf_counter()
                for payload in payloads:
                    response = client.solve(payload, seed=SEED + 1, **kwargs)
                    generations.append(int(response["ga_generations"]))
                    seeded += 1 if response.get("warm_seeds") else 0
                elapsed = time.perf_counter() - t0
                status = client.status()
        out[mode] = {
            "n_requests": len(payloads),
            "repeat_seconds": round(elapsed, 3),
            "generations": generations,
            "mean_generations": round(float(np.mean(generations)), 2),
            "warm_seeded_requests": seeded,
            "warm_start_hits": status["requests"].get("warm_start_hits", 0),
            "warm_start_misses": status["requests"].get("warm_start_misses", 0),
            "store": status.get("warm_start", {}),
        }
    cold, warm = out["cold"]["mean_generations"], out["warm"]["mean_generations"]
    if cold > 0:
        out["generations_saved_pct"] = round(100.0 * (cold - warm) / cold, 1)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print timings without updating BENCH_service.json",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 4],
        help="GA worker counts to benchmark (default: 1 4)",
    )
    parser.add_argument("--heft-requests", type=int, default=50)
    parser.add_argument("--ga-requests", type=int, default=8)
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 4],
        help="shard counts for the sharded-deployment scenario "
        "(default: 1 4; pass 0 to skip it)",
    )
    parser.add_argument("--shard-ga-requests", type=int, default=32)
    parser.add_argument("--shard-concurrency", type=int, default=8)
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        help="before overwriting, snapshot the existing file's sections "
        "into a top-level NAME block",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="output path (default: BENCH_service.json at the repo root)",
    )
    args = parser.parse_args(argv)

    tiers = {}
    for workers in args.workers:
        result = bench_tier(workers, args.heft_requests, args.ga_requests)
        tiers[str(workers)] = result
        for name, row in result.items():
            print(
                f"{workers} worker(s) {name:14s}: {row['req_per_second']:8.2f} req/s  "
                f"p50 {row['p50_ms']:8.2f} ms  p99 {row['p99_ms']:8.2f} ms"
            )

    sharding = None
    if args.shards and 0 not in args.shards:
        sharding = bench_sharding(
            args.shards, args.shard_ga_requests, args.shard_concurrency
        )
        for shards in sorted(int(k) for k in sharding if k.isdigit()):
            row = sharding[str(shards)]
            print(
                f"{shards} shard(s) ga_uncached  : {row['req_per_second']:8.2f} req/s  "
                f"p50 {row['p50_ms']:8.2f} ms  p99 {row['p99_ms']:8.2f} ms  "
                f"({row['degraded']} degraded, "
                f"{row['routing']['stolen']} stolen)"
            )
        for key, value in sharding.items():
            if key.startswith("speedup"):
                print(f"sharded scaling {key}: {value}x")

    warm = bench_warm_start()
    for mode in ("cold", "warm"):
        row = warm[mode]
        print(
            f"warm-start {mode:4s}: mean {row['mean_generations']:6.1f} generations  "
            f"({row['warm_seeded_requests']}/{row['n_requests']} seeded, "
            f"{row['repeat_seconds']:.2f} s repeat pass)"
        )
    if "generations_saved_pct" in warm:
        print(f"warm-start saves {warm['generations_saved_pct']}% generations on repeat traffic")

    record = {
        "service": tiers,
        "warm_start": warm,
        "meta": bench_meta(
            n_tasks=N_TASKS,
            n_realizations=N_REALIZATIONS,
            ga_overrides=GA_OVERRIDES,
            seed=SEED,
        ),
    }
    if sharding is not None:
        record["sharding"] = sharding
    if not args.no_write:
        # Preserve extra top-level sections so re-runs never lose history.
        previous = {}
        if args.output.exists():
            try:
                previous = json.loads(args.output.read_text())
            except (OSError, ValueError):
                previous = {}
        if args.baseline:
            if args.baseline in previous or args.baseline in record:
                print(f"error: baseline block {args.baseline!r} already exists")
                return 1
            snapshot = {
                key: previous[key]
                for key in ("service", "warm_start", "sharding", "meta")
                if key in previous
            }
            if snapshot:
                record[args.baseline] = snapshot
        for key, value in previous.items():
            record.setdefault(key, value)
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
