#!/usr/bin/env python
"""Check that local markdown links point at files that exist.

Scans markdown files for inline links/images (``[text](target)``),
ignores external targets (``http(s)://``, ``mailto:``) and pure anchors
(``#section``), resolves relative targets against the containing file,
and fails when a target is missing.  Anchors on local targets
(``guide.md#section``) are checked for file existence only.

Usage::

    python scripts/check_links.py README.md docs          # files and/or dirs
    python scripts/check_links.py                         # default: repo docs
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links and images; the target stops at whitespace or the closing
# paren (markdown titles like [x](y "title") keep only the path part).
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def iter_markdown(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.suffix.lower() == ".md":
            files.append(p)
        else:
            raise SystemExit(f"not a markdown file or directory: {p}")
    return files


def check_file(md: Path) -> list[tuple[str, str]]:
    """Return (link, reason) for every broken local link in *md*."""
    broken: list[tuple[str, str]] = []
    text = md.read_text()
    # Fenced code blocks contain example snippets, not navigation.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith("#") or _SCHEME.match(target):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (md.parent / path_part).resolve()
        if not resolved.exists():
            broken.append((target, f"missing: {resolved}"))
    return broken


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="markdown files and/or directories to scan "
        "(default: README.md, *.md, docs/ at the repo root)",
    )
    args = parser.parse_args(argv)

    paths = args.paths or [
        *sorted(REPO_ROOT.glob("*.md")),
        REPO_ROOT / "docs",
    ]
    files = iter_markdown(paths)
    if not files:
        raise SystemExit("no markdown files found")

    n_broken = 0
    for md in files:
        for link, reason in check_file(md):
            print(f"{md}: broken link ({link}) -> {reason}", file=sys.stderr)
            n_broken += 1
    print(f"checked {len(files)} markdown files: {n_broken} broken links")
    return 1 if n_broken else 0


if __name__ == "__main__":
    raise SystemExit(main())
