#!/usr/bin/env python
"""Benchmark the library's hot kernels and record median timings.

Runs the five kernels of ``benchmarks/test_perf_kernels.py`` — schedule
construction, static evaluation, 1000-realization batch makespans, HEFT on a
100-task instance, and one full GA run — plus ``ga_generation_pop``, the
marginal cost of a single GA generation through the population kernel
(selection + variation + one :func:`repro.ga.popeval.evaluate_population`
dispatch on pre-initialised engine state).  ``ga_generation`` keeps its
historical definition (a full 1-iteration run, dominated by the fixed
population-initialisation cost) so it stays comparable across the recorded
baselines; ``ga_generation_pop`` is what the evolution loop actually pays
per generation after startup.

Medians go to ``BENCH_kernels.json`` at the repository root.  The file
establishes the performance trajectory across PRs: run the script before
and after touching anything on the evaluation path and compare the
medians.  Extra top-level blocks in the JSON (recorded baselines) are
always preserved; ``--baseline NAME`` additionally snapshots the
*existing* file's kernel medians into a new ``NAME`` block before the
fresh numbers overwrite them, so a before/after pair survives in one file.

Usage::

    PYTHONPATH=src python scripts/bench_kernels.py            # write JSON
    PYTHONPATH=src python scripts/bench_kernels.py --no-write # print only
    PYTHONPATH=src python scripts/bench_kernels.py \
        --baseline baseline_pre_refactor   # archive current medians first

Timings are wall-clock medians over enough rounds to fill a time budget per
kernel, so occasional scheduler noise does not skew the record.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from bench_util import bench_meta

from repro.core.problem import SchedulingProblem
from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import SlackFitness
from repro.ga.selection import binary_tournament
from repro.graph.generator import DagParams
from repro.heuristics.heft import HeftScheduler
from repro.platform.uncertainty import UncertaintyParams
from repro.schedule.evaluation import batch_makespans, evaluate
from repro.schedule.schedule import Schedule

REPO_ROOT = Path(__file__).resolve().parent.parent


def _median_ms(fn, *, budget_s: float = 2.0, min_rounds: int = 5) -> tuple[float, int]:
    """Median wall-clock milliseconds of ``fn()`` over a time budget."""
    fn()  # warm caches, lazy structures, and the optional native kernel
    times: list[float] = []
    t_stop = time.perf_counter() + budget_s
    while len(times) < min_rounds or time.perf_counter() < t_stop:
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
        if len(times) >= 10_000:
            break
    times.sort()
    return times[len(times) // 2] * 1e3, len(times)


def build_kernels() -> dict:
    """The benchmark kernels on the paper-sized instance (rng pinned)."""
    problem = SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=100),
        uncertainty_params=UncertaintyParams(mean_ul=2.0),
        rng=0,
    )
    schedule = HeftScheduler().schedule(problem)
    orders = [list(t) for t in schedule.proc_orders]
    expected = schedule.expected_durations()
    durations = schedule.realize_durations(1000, rng=1)
    ga_params = GAParams(max_iterations=1, stagnation_limit=100)

    # Pre-initialised state for the marginal-generation kernel: the
    # population and its scores are built once, outside the timed region.
    setup_engine = GeneticScheduler(SlackFitness(), ga_params, rng=2)
    base_population = setup_engine._initial_population(problem)
    base_individuals = setup_engine._evaluate_batch(problem, base_population, {})
    base_scores = setup_engine.fitness.scores(base_individuals)

    def one_generation() -> None:
        # Marginal cost of one evolution step: selection, variation, one
        # population-kernel evaluation of the children, and scoring.  A
        # fresh rng per call keeps every round identical; a fresh cache
        # makes each child a true miss so the evaluation actually runs.
        engine = GeneticScheduler(SlackFitness(), ga_params, rng=3)
        selected = binary_tournament(base_scores, engine._rng)
        children = engine._next_generation(
            problem, [base_population[i] for i in selected]
        )
        engine.fitness.scores(engine._evaluate_batch(problem, children, {}))

    return {
        "schedule_construction": lambda: Schedule(problem, orders),
        "static_evaluation": lambda: evaluate(schedule, expected),
        "batch_makespans_1000": lambda: batch_makespans(schedule, durations),
        "heft_100_tasks": lambda: HeftScheduler().schedule(problem),
        "ga_generation": lambda: GeneticScheduler(
            SlackFitness(), ga_params, rng=2
        ).run(problem),
        "ga_generation_pop": one_generation,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print timings without updating BENCH_kernels.json",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=2.0,
        help="per-kernel time budget in seconds (default: 2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_kernels.json",
        help="output path (default: BENCH_kernels.json at the repo root)",
    )
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        help=(
            "snapshot the existing file's kernel medians into a NAME block "
            "before writing the fresh numbers (refused if NAME exists)"
        ),
    )
    args = parser.parse_args(argv)

    kernels = build_kernels()
    results = {}
    for name, fn in kernels.items():
        median, rounds = _median_ms(fn, budget_s=args.budget)
        results[name] = {"median_ms": round(median, 4), "rounds": rounds}
        print(f"{name:24s} {median:10.3f} ms   ({rounds} rounds)")

    record = {
        "kernels": results,
        "meta": bench_meta(),
    }
    if not args.no_write:
        # Preserve extra top-level sections (e.g. the recorded seed
        # baseline) so re-running the script never loses history.
        previous = {}
        if args.output.exists():
            try:
                previous = json.loads(args.output.read_text())
            except (OSError, ValueError):
                previous = {}
        if args.baseline:
            if args.baseline in previous or args.baseline in record:
                print(f"error: baseline block {args.baseline!r} already exists")
                return 1
            if previous.get("kernels"):
                record[args.baseline] = {
                    "kernels": {
                        name: row["median_ms"]
                        for name, row in previous["kernels"].items()
                    },
                    "meta": previous.get("meta", {}),
                }
        for key, value in previous.items():
            record.setdefault(key, value)
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
