#!/usr/bin/env python
"""Benchmark the library's hot kernels and record median timings.

Runs the same five kernels as ``benchmarks/test_perf_kernels.py`` — schedule
construction, static evaluation, 1000-realization batch makespans, HEFT on a
100-task instance, and one full GA generation — without requiring
pytest-benchmark, and writes the medians to ``BENCH_kernels.json`` at the
repository root.  The file establishes the performance trajectory across
PRs: run the script before and after touching anything on the evaluation
path and compare the medians.

Usage::

    PYTHONPATH=src python scripts/bench_kernels.py            # write JSON
    PYTHONPATH=src python scripts/bench_kernels.py --no-write # print only

Timings are wall-clock medians over enough rounds to fill a time budget per
kernel, so occasional scheduler noise does not skew the record.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import SlackFitness
from repro.graph import _native
from repro.graph.generator import DagParams
from repro.heuristics.heft import HeftScheduler
from repro.platform.uncertainty import UncertaintyParams
from repro.schedule.evaluation import batch_makespans, evaluate
from repro.schedule.schedule import Schedule

REPO_ROOT = Path(__file__).resolve().parent.parent


def _median_ms(fn, *, budget_s: float = 2.0, min_rounds: int = 5) -> tuple[float, int]:
    """Median wall-clock milliseconds of ``fn()`` over a time budget."""
    fn()  # warm caches, lazy structures, and the optional native kernel
    times: list[float] = []
    t_stop = time.perf_counter() + budget_s
    while len(times) < min_rounds or time.perf_counter() < t_stop:
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
        if len(times) >= 10_000:
            break
    times.sort()
    return times[len(times) // 2] * 1e3, len(times)


def build_kernels() -> dict:
    """The five benchmark kernels on the paper-sized instance (rng pinned)."""
    problem = SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=100),
        uncertainty_params=UncertaintyParams(mean_ul=2.0),
        rng=0,
    )
    schedule = HeftScheduler().schedule(problem)
    orders = [list(t) for t in schedule.proc_orders]
    expected = schedule.expected_durations()
    durations = schedule.realize_durations(1000, rng=1)
    ga_params = GAParams(max_iterations=1, stagnation_limit=100)

    return {
        "schedule_construction": lambda: Schedule(problem, orders),
        "static_evaluation": lambda: evaluate(schedule, expected),
        "batch_makespans_1000": lambda: batch_makespans(schedule, durations),
        "heft_100_tasks": lambda: HeftScheduler().schedule(problem),
        "ga_generation": lambda: GeneticScheduler(
            SlackFitness(), ga_params, rng=2
        ).run(problem),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print timings without updating BENCH_kernels.json",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=2.0,
        help="per-kernel time budget in seconds (default: 2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_kernels.json",
        help="output path (default: BENCH_kernels.json at the repo root)",
    )
    args = parser.parse_args(argv)

    kernels = build_kernels()
    results = {}
    for name, fn in kernels.items():
        median, rounds = _median_ms(fn, budget_s=args.budget)
        results[name] = {"median_ms": round(median, 4), "rounds": rounds}
        print(f"{name:24s} {median:10.3f} ms   ({rounds} rounds)")

    record = {
        "kernels": results,
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "native_kernel": _native.get_lib() is not None,
        },
    }
    if not args.no_write:
        # Preserve extra top-level sections (e.g. the recorded seed
        # baseline) so re-running the script never loses history.
        if args.output.exists():
            try:
                previous = json.loads(args.output.read_text())
            except (OSError, ValueError):
                previous = {}
            for key, value in previous.items():
                record.setdefault(key, value)
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
