#!/usr/bin/env python
"""Collect medium-scale results for every figure into results/*.txt.

Used to populate EXPERIMENTS.md.  Paper scale is a flag away but takes
hours; medium scale preserves the qualitative shapes.

Run:  python scripts/collect_results.py [--scale medium]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.best_eps import run_best_eps
from repro.experiments.config import PAPER_ULS, SCALES, ExperimentConfig
from repro.experiments.eps_one import run_eps_one
from repro.experiments.eps_sweep import PAPER_EPSILONS, run_eps_sweep
from repro.experiments.runner import run_eps_grid
from repro.experiments.slack_effect import run_slack_effect

RESULTS = pathlib.Path(__file__).resolve().parents[1] / "results"


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="medium", choices=sorted(SCALES))
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    args = parser.parse_args()

    RESULTS.mkdir(exist_ok=True)
    config = ExperimentConfig(scale=SCALES[args.scale])
    t0 = time.perf_counter()

    def log(msg: str) -> None:
        print(f"[{time.perf_counter() - t0:8.1f}s] {msg}", flush=True)

    def save(name: str, text: str) -> None:
        (RESULTS / f"{name}.txt").write_text(text + "\n")
        log(f"wrote results/{name}.txt")
        print(text, flush=True)

    log(f"scale={args.scale}")

    fig2 = run_slack_effect(config, "makespan", PAPER_ULS, n_jobs=args.jobs, progress=log)
    save("fig2", fig2.to_table())

    fig3 = run_slack_effect(config, "slack", PAPER_ULS, n_jobs=args.jobs, progress=log)
    save("fig3", fig3.to_table())

    log("building the shared (UL, eps) grid for figs 4-8 ...")
    grid = run_eps_grid(config, PAPER_ULS, PAPER_EPSILONS, n_jobs=args.jobs, progress=log)

    fig4 = run_eps_one(config, PAPER_ULS, grid=grid)
    save("fig4", fig4.to_table())

    sweep = run_eps_sweep(config, PAPER_ULS, PAPER_EPSILONS, grid=grid)
    save("fig5", sweep.to_table("r1"))
    save("fig6", sweep.to_table("r2"))

    best = run_best_eps(config, PAPER_ULS, PAPER_EPSILONS, grid=grid)
    save("fig7", best.to_table("r1"))
    save("fig8", best.to_table("r2"))

    log("done")


if __name__ == "__main__":
    sys.exit(main())
